package plan

import (
	"sort"

	"cloudviews/internal/data"
)

// NormalizeExpr canonicalizes an expression tree without changing its
// semantics: constants fold, AND/OR chains flatten and sort, commutative
// operands order canonically, double negation drops. Signatures are computed
// over normalized plans, so this pass determines how much syntactic variation
// still matches for reuse (the paper: "same logical query subexpressions,
// with some normalization").
func NormalizeExpr(e Expr) Expr {
	switch x := e.(type) {
	case *Binary:
		l := NormalizeExpr(x.L)
		r := NormalizeExpr(x.R)

		switch x.Op {
		case "AND", "OR":
			terms := flattenBool(x.Op, l)
			terms = append(terms, flattenBool(x.Op, r)...)
			// Fold constant terms.
			var kept []Expr
			for _, t := range terms {
				if c, ok := t.(*Const); ok && c.Val.Kind == data.KindBool {
					if x.Op == "AND" && !c.Val.B {
						return &Const{Val: data.Bool(false)}
					}
					if x.Op == "OR" && c.Val.B {
						return &Const{Val: data.Bool(true)}
					}
					continue // identity element
				}
				kept = append(kept, t)
			}
			if len(kept) == 0 {
				return &Const{Val: data.Bool(x.Op == "AND")}
			}
			sort.Slice(kept, func(i, j int) bool { return kept[i].Canonical() < kept[j].Canonical() })
			out := kept[0]
			for _, t := range kept[1:] {
				out = &Binary{Op: x.Op, L: out, R: t}
			}
			return out

		case "+", "*", "=", "!=":
			// '+' concatenates strings, which is not commutative; keep order.
			stringy := l.Kind() == data.KindString || r.Kind() == data.KindString
			if !(x.Op == "+" && stringy) && l.Canonical() > r.Canonical() {
				l, r = r, l
			}
		case ">":
			return NormalizeExpr(&Binary{Op: "<", L: r, R: l})
		case ">=":
			return NormalizeExpr(&Binary{Op: "<=", L: r, R: l})
		}

		folded := tryFoldBinary(x.Op, l, r)
		if folded != nil {
			return folded
		}
		return &Binary{Op: x.Op, L: l, R: r}

	case *Unary:
		inner := NormalizeExpr(x.E)
		if x.Op == "NOT" {
			if u, ok := inner.(*Unary); ok && u.Op == "NOT" {
				return u.E // double negation
			}
			if c, ok := inner.(*Const); ok && c.Val.Kind == data.KindBool {
				return &Const{Val: data.Bool(!c.Val.B)}
			}
		}
		if x.Op == "-" {
			if c, ok := inner.(*Const); ok {
				switch c.Val.Kind {
				case data.KindInt:
					return &Const{Val: data.Int(-c.Val.I)}
				case data.KindFloat:
					return &Const{Val: data.Float(-c.Val.F)}
				}
			}
		}
		return &Unary{Op: x.Op, E: inner}

	case *Call:
		args := make([]Expr, len(x.Args))
		allConst := true
		for i, a := range x.Args {
			args[i] = NormalizeExpr(a)
			if _, ok := args[i].(*Const); !ok {
				allConst = false
			}
		}
		// Fold deterministic calls over constants.
		if allConst && IsDeterministicFunc(x.Name) && len(args) > 0 {
			vals := make([]data.Value, len(args))
			for i, a := range args {
				vals[i] = a.(*Const).Val
			}
			c := &Call{Name: x.Name, Args: args}
			return &Const{Val: c.Eval(nil, &EvalContext{Rand: data.NewRand(1)})}
		}
		return &Call{Name: x.Name, Args: args}

	default:
		return e
	}
}

func flattenBool(op string, e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == op {
		return append(flattenBool(op, b.L), flattenBool(op, b.R)...)
	}
	return []Expr{e}
}

// tryFoldBinary folds arithmetic/comparison over two constants; returns nil
// when not foldable.
func tryFoldBinary(op string, l, r Expr) Expr {
	lc, lok := l.(*Const)
	rc, rok := r.(*Const)
	if !lok || !rok {
		return nil
	}
	b := &Binary{Op: op, L: lc, R: rc}
	return &Const{Val: b.Eval(nil, nil)}
}

// NormalizeNode canonicalizes all expressions in a plan tree, bottom-up, and
// orders join key pairs canonically. It returns a new tree; the input is not
// mutated.
func NormalizeNode(n Node) Node {
	return Rewrite(n, func(m Node) Node {
		switch x := m.(type) {
		case *Filter:
			cp := *x
			cp.Pred = NormalizeExpr(x.Pred)
			return &cp
		case *Project:
			cp := *x
			cp.Exprs = make([]Expr, len(x.Exprs))
			for i, e := range x.Exprs {
				cp.Exprs[i] = NormalizeExpr(e)
			}
			return &cp
		case *Join:
			cp := *x
			type pair struct {
				l, r Expr
				key  string
			}
			pairs := make([]pair, len(x.LeftKeys))
			for i := range x.LeftKeys {
				l := NormalizeExpr(x.LeftKeys[i])
				r := NormalizeExpr(x.RightKeys[i])
				pairs[i] = pair{l: l, r: r, key: l.Canonical() + "=" + r.Canonical()}
			}
			sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
			cp.LeftKeys = make([]Expr, len(pairs))
			cp.RightKeys = make([]Expr, len(pairs))
			for i, p := range pairs {
				cp.LeftKeys[i], cp.RightKeys[i] = p.l, p.r
			}
			if x.Residual != nil {
				cp.Residual = NormalizeExpr(x.Residual)
			}
			return &cp
		case *Aggregate:
			cp := *x
			cp.GroupBy = make([]Expr, len(x.GroupBy))
			for i, g := range x.GroupBy {
				cp.GroupBy[i] = NormalizeExpr(g)
			}
			cp.Aggs = make([]AggSpec, len(x.Aggs))
			for i, s := range x.Aggs {
				ns := s
				if s.Arg != nil {
					ns.Arg = NormalizeExpr(s.Arg)
				}
				cp.Aggs[i] = ns
			}
			return &cp
		default:
			return m
		}
	})
}
