package plan

import (
	"fmt"
	"strings"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/sqlparser"
)

// Binder turns parsed scripts into bound logical plans against a catalog.
type Binder struct {
	Catalog *catalog.Catalog
	// Params binds @name parameters at submission time. These are the
	// time-varying attributes recurring signatures discard.
	Params map[string]data.Value
	// Pins optionally forces a specific dataset version (instead of latest),
	// used by tests and the debugging annotation flow.
	Pins map[string]catalog.GUID

	env map[string]Node // named intermediate rowsets, bound

	// resolved memoizes the dataset version each name bound to, so a script
	// that references the same dataset several times sees ONE version even
	// if a concurrent bulk update publishes a newer one mid-bind (snapshot
	// consistency for a single compilation).
	resolved map[string]*catalog.Version
}

// BindScript binds a full script and returns the Output roots, in script
// order. A script must contain at least one OUTPUT statement.
func (b *Binder) BindScript(s *sqlparser.Script) ([]*Output, error) {
	b.env = make(map[string]Node)
	var outs []*Output
	for _, st := range s.Stmts {
		switch stmt := st.(type) {
		case *sqlparser.AssignStmt:
			n, err := b.BindQuery(stmt.Query)
			if err != nil {
				return nil, fmt.Errorf("binding %s: %w", stmt.Name, err)
			}
			b.env[strings.ToLower(stmt.Name)] = n
		case *sqlparser.OutputStmt:
			n, err := b.BindQuery(stmt.Source)
			if err != nil {
				return nil, fmt.Errorf("binding OUTPUT %s: %w", stmt.Target, err)
			}
			outs = append(outs, &Output{Target: stmt.Target, Child: n})
		default:
			return nil, fmt.Errorf("unsupported statement %T", st)
		}
	}
	if len(outs) == 0 {
		return nil, fmt.Errorf("script has no OUTPUT statement")
	}
	return outs, nil
}

// BindQuery binds a single query expression.
func (b *Binder) BindQuery(q sqlparser.QueryExpr) (Node, error) {
	if b.env == nil {
		b.env = make(map[string]Node)
	}
	n, _, err := b.bindQueryScoped(q, "")
	return n, err
}

// scopeEntry is one visible column during binding.
type scopeEntry struct {
	qual string
	name string
	kind data.Kind
}

type scope struct {
	cols []scopeEntry
}

func scopeFrom(schema data.Schema, qual string) *scope {
	s := &scope{cols: make([]scopeEntry, len(schema))}
	for i, c := range schema {
		s.cols[i] = scopeEntry{qual: strings.ToLower(qual), name: strings.ToLower(c.Name), kind: c.Kind}
	}
	return s
}

func (s *scope) concat(o *scope) *scope {
	out := &scope{cols: make([]scopeEntry, 0, len(s.cols)+len(o.cols))}
	out.cols = append(out.cols, s.cols...)
	out.cols = append(out.cols, o.cols...)
	return out
}

// resolve finds the unique column matching (qual, name).
func (s *scope) resolve(qual, name string) (int, data.Kind, error) {
	qual, name = strings.ToLower(qual), strings.ToLower(name)
	found := -1
	var kind data.Kind
	for i, c := range s.cols {
		if c.name != name {
			continue
		}
		if qual != "" && c.qual != qual {
			continue
		}
		if found >= 0 {
			return 0, 0, fmt.Errorf("ambiguous column %q", name)
		}
		found, kind = i, c.kind
	}
	if found < 0 {
		if qual != "" {
			return 0, 0, fmt.Errorf("unknown column %q.%q", qual, name)
		}
		return 0, 0, fmt.Errorf("unknown column %q", name)
	}
	return found, kind, nil
}

func (b *Binder) bindQueryScoped(q sqlparser.QueryExpr, qual string) (Node, *scope, error) {
	switch query := q.(type) {
	case *sqlparser.SelectQuery:
		return b.bindSelect(query, qual)
	case *sqlparser.ProcessQuery:
		child, _, err := b.bindTableRef(query.Source)
		if err != nil {
			return nil, nil, err
		}
		impl, ok := LookupUDO(query.Udo)
		if !ok {
			return nil, nil, fmt.Errorf("unknown UDO %q", query.Udo)
		}
		nondet := query.Nondeterministic || !impl.Deterministic
		n := &UDO{Name: query.Udo, Depends: query.Depends, Nondet: nondet, Child: child}
		return n, scopeFrom(n.Schema(), qual), nil
	case *sqlparser.UnionQuery:
		l, _, err := b.bindQueryScoped(query.Left, "")
		if err != nil {
			return nil, nil, err
		}
		r, _, err := b.bindQueryScoped(query.Right, "")
		if err != nil {
			return nil, nil, err
		}
		if !l.Schema().Equal(r.Schema()) {
			return nil, nil, fmt.Errorf("UNION ALL schema mismatch: (%s) vs (%s)", l.Schema(), r.Schema())
		}
		n := &Union{L: l, R: r}
		return n, scopeFrom(n.Schema(), qual), nil
	default:
		return nil, nil, fmt.Errorf("unsupported query expression %T", q)
	}
}

func (b *Binder) bindTableRef(ref sqlparser.TableRef) (Node, *scope, error) {
	switch r := ref.(type) {
	case *sqlparser.NamedRef:
		qual := r.Alias
		if qual == "" {
			qual = r.Name
		}
		// Named intermediate rowset?
		if n, ok := b.env[strings.ToLower(r.Name)]; ok {
			cloned := CloneNode(n)
			return cloned, scopeFrom(cloned.Schema(), qual), nil
		}
		// Catalog dataset.
		ver, ok := b.resolved[r.Name]
		if !ok {
			var err error
			if g, pinned := b.Pins[r.Name]; pinned {
				ver, err = b.Catalog.VersionByGUID(g)
			} else {
				ver, err = b.Catalog.Latest(r.Name)
			}
			if err != nil {
				return nil, nil, err
			}
			if b.resolved == nil {
				b.resolved = make(map[string]*catalog.Version)
			}
			b.resolved[r.Name] = ver
		}
		ds, _ := b.Catalog.Dataset(r.Name)
		scan := &Scan{
			Dataset: ds.Name,
			GUID:    ver.GUID,
			Out:     ds.Schema.Clone(),
			// BaseRows is the LOGICAL cardinality (physical rows times the
			// dataset scale factor) so compile-time estimates line up with
			// the executor's scaled accounting.
			BaseRows: int64(float64(ver.Table.NumRows()) * ds.EffectiveScale()),
		}
		return scan, scopeFrom(scan.Out, qual), nil
	case *sqlparser.SubqueryRef:
		return b.bindQueryScoped(r.Query, r.Alias)
	default:
		return nil, nil, fmt.Errorf("unsupported table reference %T", ref)
	}
}

var aggNames = map[string]AggKind{
	"SUM": AggSum, "AVG": AggAvg, "COUNT": AggCount, "MIN": AggMin, "MAX": AggMax,
}

func isAggCall(e sqlparser.Expr) (*sqlparser.FuncCall, bool) {
	fc, ok := e.(*sqlparser.FuncCall)
	if !ok {
		return nil, false
	}
	_, isAgg := aggNames[fc.Name]
	return fc, isAgg
}

func containsAgg(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case *sqlparser.FuncCall:
		if _, ok := aggNames[x.Name]; ok {
			return true
		}
		for _, a := range x.Args {
			if containsAgg(a) {
				return true
			}
		}
	case *sqlparser.BinaryExpr:
		return containsAgg(x.Left) || containsAgg(x.Right)
	case *sqlparser.UnaryExpr:
		return containsAgg(x.Expr)
	}
	return false
}

func (b *Binder) bindSelect(q *sqlparser.SelectQuery, qual string) (Node, *scope, error) {
	if q.From == nil {
		return nil, nil, fmt.Errorf("SELECT without FROM")
	}
	node, sc, err := b.bindTableRef(q.From)
	if err != nil {
		return nil, nil, err
	}

	// Joins.
	for _, jc := range q.Joins {
		right, rightScope, err := b.bindTableRef(jc.Right)
		if err != nil {
			return nil, nil, err
		}
		leftWidth := len(sc.cols)
		combined := sc.concat(rightScope)
		join := &Join{L: node, R: right}
		if jc.On != nil {
			conjuncts := splitConjuncts(jc.On)
			var residuals []sqlparser.Expr
			for _, c := range conjuncts {
				le, re, ok, err := b.tryEquiKey(c, combined, leftWidth)
				if err != nil {
					return nil, nil, err
				}
				if ok {
					join.LeftKeys = append(join.LeftKeys, le)
					join.RightKeys = append(join.RightKeys, re)
				} else {
					residuals = append(residuals, c)
				}
			}
			if len(residuals) > 0 {
				res, err := b.bindExpr(joinConjuncts(residuals), combined)
				if err != nil {
					return nil, nil, err
				}
				join.Residual = res
			}
		}
		node, sc = join, combined
	}

	// WHERE.
	if q.Where != nil {
		pred, err := b.bindExpr(q.Where, sc)
		if err != nil {
			return nil, nil, err
		}
		node = &Filter{Pred: pred, Child: node}
	}

	// Grouping / projection.
	hasAgg := len(q.GroupBy) > 0
	for _, it := range q.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}

	if hasAgg {
		node, sc, err = b.bindGrouped(q, node, sc, qual)
		if err != nil {
			return nil, nil, err
		}
	} else {
		node, sc, err = b.bindProjection(q.Items, node, sc, qual)
		if err != nil {
			return nil, nil, err
		}
	}

	if q.Distinct {
		// DISTINCT = group by all output columns.
		schema := node.Schema()
		groups := make([]Expr, len(schema))
		names := make([]string, len(schema))
		for i, c := range schema {
			groups[i] = &ColRef{Index: i, Name: c.Name, Typ: c.Kind}
			names[i] = c.Name
		}
		node = &Aggregate{GroupBy: groups, GroupNames: names, Child: node}
		sc = scopeFrom(node.Schema(), qual)
	}

	if q.SamplePercent > 0 {
		node = &Sample{Percent: q.SamplePercent, Child: node}
	}
	if len(q.OrderBy) > 0 {
		// ORDER BY binds against the output schema (aliases visible).
		outScope := scopeFrom(node.Schema(), "")
		srt := &Sort{Child: node}
		for _, item := range q.OrderBy {
			e, err := b.bindExpr(item.Expr, outScope)
			if err != nil {
				return nil, nil, fmt.Errorf("binding ORDER BY: %w", err)
			}
			srt.Keys = append(srt.Keys, e)
			srt.Desc = append(srt.Desc, item.Desc)
		}
		node = srt
	}
	return node, sc, nil
}

// bindProjection handles the non-aggregated select list.
func (b *Binder) bindProjection(items []sqlparser.SelectItem, node Node, sc *scope, qual string) (Node, *scope, error) {
	// Pure `SELECT *` introduces no Project node.
	if len(items) == 1 && items[0].Star {
		return node, scopeFrom(node.Schema(), qual), nil
	}
	var exprs []Expr
	var names []string
	schema := node.Schema()
	for i, it := range items {
		if it.Star {
			for j, c := range schema {
				exprs = append(exprs, &ColRef{Index: j, Name: c.Name, Typ: c.Kind})
				names = append(names, c.Name)
			}
			continue
		}
		e, err := b.bindExpr(it.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		names = append(names, deriveName(it, e, i))
	}
	p := &Project{Exprs: exprs, Names: names, Child: node}
	return p, scopeFrom(p.Schema(), qual), nil
}

// bindGrouped handles GROUP BY / aggregate select lists, producing an
// Aggregate node followed (when necessary) by a reordering Project.
func (b *Binder) bindGrouped(q *sqlparser.SelectQuery, node Node, sc *scope, qual string) (Node, *scope, error) {
	agg := &Aggregate{Child: node}

	// Bind group-by expressions.
	groupCanon := make(map[string]int) // canonical expr -> group position
	for _, g := range q.GroupBy {
		e, err := b.bindExpr(g, sc)
		if err != nil {
			return nil, nil, err
		}
		name := ""
		if cr, ok := e.(*ColRef); ok {
			name = cr.Name
		} else {
			name = fmt.Sprintf("group_%d", len(agg.GroupBy))
		}
		groupCanon[e.Canonical()] = len(agg.GroupBy)
		agg.GroupBy = append(agg.GroupBy, e)
		agg.GroupNames = append(agg.GroupNames, name)
	}

	// Walk the select list: each item is a group expression or an aggregate
	// call. outputIndex maps the select order to the aggregate output schema.
	type outputRef struct {
		pos  int // position in Aggregate output schema
		name string
	}
	var outputs []outputRef
	for i, it := range q.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("SELECT * cannot be combined with GROUP BY")
		}
		if fc, ok := isAggCall(it.Expr); ok {
			spec := AggSpec{Kind: aggNames[fc.Name]}
			if fc.Star {
				if spec.Kind != AggCount {
					return nil, nil, fmt.Errorf("%s(*) is not supported", fc.Name)
				}
			} else {
				if len(fc.Args) != 1 {
					return nil, nil, fmt.Errorf("%s expects exactly one argument", fc.Name)
				}
				arg, err := b.bindExpr(fc.Args[0], sc)
				if err != nil {
					return nil, nil, err
				}
				spec.Arg = arg
			}
			spec.Name = deriveName(it, nil, i)
			if spec.Name == "" || strings.HasPrefix(spec.Name, "col_") {
				spec.Name = strings.ToLower(fc.Name) + fmt.Sprintf("_%d", len(agg.Aggs))
			}
			pos := len(agg.GroupBy) + len(agg.Aggs)
			agg.Aggs = append(agg.Aggs, spec)
			outputs = append(outputs, outputRef{pos: pos, name: spec.Name})
			continue
		}
		if containsAgg(it.Expr) {
			return nil, nil, fmt.Errorf("expressions over aggregates are not supported: %s", it.Expr.String())
		}
		e, err := b.bindExpr(it.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		pos, ok := groupCanon[e.Canonical()]
		if !ok {
			return nil, nil, fmt.Errorf("select item %s is neither aggregated nor in GROUP BY", it.Expr.String())
		}
		name := deriveName(it, e, i)
		if it.Alias != "" {
			agg.GroupNames[pos] = it.Alias
		}
		outputs = append(outputs, outputRef{pos: pos, name: name})
	}

	var result Node = agg
	aggSchema := agg.Schema()

	// HAVING filters over the aggregate output.
	if q.Having != nil {
		havingScope := scopeFrom(aggSchema, "")
		pred, err := b.bindExpr(q.Having, havingScope)
		if err != nil {
			return nil, nil, fmt.Errorf("binding HAVING: %w", err)
		}
		result = &Filter{Pred: pred, Child: result}
	}

	// Reordering projection when select order differs from aggregate layout.
	needProject := len(outputs) != len(aggSchema)
	for i, o := range outputs {
		if o.pos != i || !strings.EqualFold(o.name, aggSchema[o.pos].Name) {
			needProject = true
		}
	}
	if needProject {
		exprs := make([]Expr, len(outputs))
		names := make([]string, len(outputs))
		for i, o := range outputs {
			exprs[i] = &ColRef{Index: o.pos, Name: aggSchema[o.pos].Name, Typ: aggSchema[o.pos].Kind}
			names[i] = o.name
		}
		result = &Project{Exprs: exprs, Names: names, Child: result}
	}
	return result, scopeFrom(result.Schema(), qual), nil
}

// deriveName picks an output column name for a select item.
func deriveName(it sqlparser.SelectItem, bound Expr, pos int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
		return cr.Name
	}
	if bound != nil {
		if cr, ok := bound.(*ColRef); ok {
			return cr.Name
		}
	}
	if fc, ok := it.Expr.(*sqlparser.FuncCall); ok {
		return strings.ToLower(fc.Name)
	}
	return fmt.Sprintf("col_%d", pos)
}

// splitConjuncts flattens a chain of ANDs.
func splitConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []sqlparser.Expr{e}
}

func joinConjuncts(es []sqlparser.Expr) sqlparser.Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = &sqlparser.BinaryExpr{Op: "AND", Left: out, Right: e}
	}
	return out
}

// tryEquiKey checks whether conjunct is `leftExpr = rightExpr` with the two
// sides referencing disjoint join inputs; on success it returns the left key
// (bound to the combined scope) and the right key rebased to the right
// child's local schema.
func (b *Binder) tryEquiKey(conjunct sqlparser.Expr, combined *scope, leftWidth int) (Expr, Expr, bool, error) {
	be, ok := conjunct.(*sqlparser.BinaryExpr)
	if !ok || be.Op != "=" {
		return nil, nil, false, nil
	}
	l, err := b.bindExpr(be.Left, combined)
	if err != nil {
		return nil, nil, false, err
	}
	r, err := b.bindExpr(be.Right, combined)
	if err != nil {
		return nil, nil, false, err
	}
	side := func(e Expr) int {
		// 0 = no columns, 1 = all left, 2 = all right, 3 = mixed
		s := 0
		for idx := range ColumnsUsed(e) {
			if idx < leftWidth {
				s |= 1
			} else {
				s |= 2
			}
		}
		return s
	}
	ls, rs := side(l), side(r)
	rebase := func(e Expr) Expr {
		mapping := make(map[int]int)
		for idx := range ColumnsUsed(e) {
			mapping[idx] = idx - leftWidth
		}
		return RemapColumns(e, mapping)
	}
	switch {
	case ls == 1 && rs == 2:
		return l, rebase(r), true, nil
	case ls == 2 && rs == 1:
		return r, rebase(l), true, nil
	default:
		return nil, nil, false, nil
	}
}

// bindExpr lowers a parsed scalar expression against a scope.
func (b *Binder) bindExpr(e sqlparser.Expr, sc *scope) (Expr, error) {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		idx, kind, err := sc.resolve(x.Qualifier, x.Name)
		if err != nil {
			return nil, err
		}
		return &ColRef{Index: idx, Name: x.Name, Typ: kind}, nil
	case *sqlparser.Literal:
		switch x.Kind {
		case sqlparser.LitInt:
			return &Const{Val: data.Int(x.Int)}, nil
		case sqlparser.LitFloat:
			return &Const{Val: data.Float(x.Float)}, nil
		case sqlparser.LitString:
			return &Const{Val: data.String_(x.Str)}, nil
		case sqlparser.LitBool:
			return &Const{Val: data.Bool(x.BoolV)}, nil
		case sqlparser.LitNull:
			return &Const{Val: data.Null()}, nil
		}
		return nil, fmt.Errorf("unknown literal kind")
	case *sqlparser.ParamRef:
		v, ok := b.Params[x.Name]
		if !ok {
			return nil, fmt.Errorf("unbound parameter @%s", x.Name)
		}
		return &Param{Name: x.Name, Val: v}, nil
	case *sqlparser.BinaryExpr:
		l, err := b.bindExpr(x.Left, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.Right, sc)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, L: l, R: r}, nil
	case *sqlparser.UnaryExpr:
		inner, err := b.bindExpr(x.Expr, sc)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, E: inner}, nil
	case *sqlparser.FuncCall:
		if _, isAgg := aggNames[x.Name]; isAgg {
			return nil, fmt.Errorf("aggregate %s in scalar context", x.Name)
		}
		if !KnownFunc(x.Name) {
			return nil, fmt.Errorf("unknown function %s", x.Name)
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			bound, err := b.bindExpr(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = bound
		}
		return &Call{Name: strings.ToUpper(x.Name), Args: args}, nil
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

// CloneNode deep-copies a plan tree. Expressions are immutable after binding
// and may be shared between copies.
func CloneNode(n Node) Node {
	children := n.Children()
	if len(children) == 0 {
		return n.WithChildren(nil)
	}
	newChildren := make([]Node, len(children))
	for i, c := range children {
		newChildren[i] = CloneNode(c)
	}
	return n.WithChildren(newChildren)
}
