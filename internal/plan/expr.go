// Package plan defines the logical query plan: typed scalar expressions bound
// to schemas, relational operator nodes, the binder that turns parsed scripts
// into plans, and the normalization pass that canonicalizes plans before
// signature computation. Signatures over normalized plans are what CloudViews
// matches for reuse, so canonical forms here directly determine reuse recall.
package plan

import (
	"fmt"
	"strings"

	"cloudviews/internal/data"
)

// Expr is a bound scalar expression. Column references carry resolved indexes
// into the input row.
type Expr interface {
	// Eval computes the expression over one input row. ctx supplies
	// evaluation-scoped state (the clock for NOW, the RNG for RANDOM).
	Eval(row data.Row, ctx *EvalContext) data.Value
	// Kind reports the static result type.
	Kind() data.Kind
	// Canonical renders the normalization-stable textual form used by
	// signatures. Parameters render as their VALUE here; the recurring form
	// is produced by CanonicalRecurring.
	Canonical() string
	// CanonicalRecurring renders the form with time-varying attributes
	// (parameter values) replaced by their names, per the paper's recurring
	// signatures.
	CanonicalRecurring() string
	// Walk visits this node then all children.
	Walk(fn func(Expr))
}

// EvalContext carries evaluation-scoped state for non-deterministic builtins.
type EvalContext struct {
	NowNanos int64
	Rand     *data.Rand
	guidSeq  int64
}

// ColRef references an input column by resolved index.
type ColRef struct {
	Index int
	Name  string // resolved, unqualified output name (for display)
	Typ   data.Kind
}

// Const is a literal constant.
type Const struct {
	Val data.Value
}

// Param is a bound query parameter. Strict signatures include the bound
// value; recurring signatures include only the name.
type Param struct {
	Name string
	Val  data.Value
}

// Binary is a binary operation. Op is one of + - * / % = != < <= > >= AND OR LIKE.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is NOT or unary minus.
type Unary struct {
	Op string
	E  Expr
}

// Call applies a builtin scalar function.
type Call struct {
	Name string
	Args []Expr
}

func (c *ColRef) Kind() data.Kind { return c.Typ }
func (c *Const) Kind() data.Kind  { return c.Val.Kind }
func (p *Param) Kind() data.Kind  { return p.Val.Kind }

func (b *Binary) Kind() data.Kind {
	switch b.Op {
	case "=", "!=", "<", "<=", ">", ">=", "AND", "OR", "LIKE":
		return data.KindBool
	case "/":
		return data.KindFloat
	default:
		lk, rk := b.L.Kind(), b.R.Kind()
		if lk == data.KindFloat || rk == data.KindFloat {
			return data.KindFloat
		}
		if lk == data.KindString || rk == data.KindString {
			return data.KindString // '+' concatenates when either side is string
		}
		return data.KindInt
	}
}

func (u *Unary) Kind() data.Kind {
	if u.Op == "NOT" {
		return data.KindBool
	}
	return u.E.Kind()
}

func (f *Call) Kind() data.Kind {
	if spec, ok := builtins[f.Name]; ok {
		return spec.result
	}
	return data.KindNull
}

func (c *ColRef) Eval(row data.Row, _ *EvalContext) data.Value {
	if c.Index < 0 || c.Index >= len(row) {
		return data.Null()
	}
	return row[c.Index]
}

func (c *Const) Eval(data.Row, *EvalContext) data.Value { return c.Val }
func (p *Param) Eval(data.Row, *EvalContext) data.Value { return p.Val }

func (b *Binary) Eval(row data.Row, ctx *EvalContext) data.Value {
	switch b.Op {
	case "AND":
		l := b.L.Eval(row, ctx)
		if l.Kind == data.KindBool && !l.B {
			return data.Bool(false)
		}
		r := b.R.Eval(row, ctx)
		return data.Bool(truthy(l) && truthy(r))
	case "OR":
		l := b.L.Eval(row, ctx)
		if l.Kind == data.KindBool && l.B {
			return data.Bool(true)
		}
		r := b.R.Eval(row, ctx)
		return data.Bool(truthy(l) || truthy(r))
	}
	l := b.L.Eval(row, ctx)
	r := b.R.Eval(row, ctx)
	switch b.Op {
	case "=":
		return data.Bool(!l.IsNull() && !r.IsNull() && l.Equal(r))
	case "!=":
		return data.Bool(!l.IsNull() && !r.IsNull() && !l.Equal(r))
	case "<":
		return data.Bool(!l.IsNull() && !r.IsNull() && l.Compare(r) < 0)
	case "<=":
		return data.Bool(!l.IsNull() && !r.IsNull() && l.Compare(r) <= 0)
	case ">":
		return data.Bool(!l.IsNull() && !r.IsNull() && l.Compare(r) > 0)
	case ">=":
		return data.Bool(!l.IsNull() && !r.IsNull() && l.Compare(r) >= 0)
	case "LIKE":
		return data.Bool(likeMatch(l.String(), r.String()))
	case "+":
		if l.Kind == data.KindString || r.Kind == data.KindString {
			return data.String_(l.String() + r.String())
		}
		if l.Kind == data.KindFloat || r.Kind == data.KindFloat {
			return data.Float(l.AsFloat() + r.AsFloat())
		}
		return data.Int(l.AsInt() + r.AsInt())
	case "-":
		if l.Kind == data.KindFloat || r.Kind == data.KindFloat {
			return data.Float(l.AsFloat() - r.AsFloat())
		}
		return data.Int(l.AsInt() - r.AsInt())
	case "*":
		if l.Kind == data.KindFloat || r.Kind == data.KindFloat {
			return data.Float(l.AsFloat() * r.AsFloat())
		}
		return data.Int(l.AsInt() * r.AsInt())
	case "/":
		d := r.AsFloat()
		if d == 0 {
			return data.Null()
		}
		return data.Float(l.AsFloat() / d)
	case "%":
		d := r.AsInt()
		if d == 0 {
			return data.Null()
		}
		return data.Int(l.AsInt() % d)
	default:
		return data.Null()
	}
}

func (u *Unary) Eval(row data.Row, ctx *EvalContext) data.Value {
	v := u.E.Eval(row, ctx)
	switch u.Op {
	case "NOT":
		return data.Bool(!truthy(v))
	case "-":
		if v.Kind == data.KindFloat {
			return data.Float(-v.F)
		}
		return data.Int(-v.AsInt())
	default:
		return data.Null()
	}
}

func truthy(v data.Value) bool { return v.Kind == data.KindBool && v.B }

// likeMatch implements SQL LIKE with % (any run) and _ (single char).
func likeMatch(s, pattern string) bool {
	// Dynamic-programming match, iterative to avoid recursion depth issues.
	n, m := len(s), len(pattern)
	prev := make([]bool, n+1)
	cur := make([]bool, n+1)
	prev[0] = true
	for j := 1; j <= m; j++ {
		cur[0] = prev[0] && pattern[j-1] == '%'
		for i := 1; i <= n; i++ {
			switch pattern[j-1] {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == pattern[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// builtinSpec describes a registered scalar function.
type builtinSpec struct {
	result        data.Kind
	deterministic bool
	arity         int // -1 = variadic
	eval          func(args []data.Value, ctx *EvalContext) data.Value
}

// builtins registers the scalar functions supported by the dialect, including
// the non-deterministic ones the paper calls out as signature hazards
// (DateTime.Now → NOW, Guid.NewGuid → NEWGUID, Random().Next → RANDOM).
var builtins = map[string]builtinSpec{
	"YEAR": {data.KindInt, true, 1, func(a []data.Value, _ *EvalContext) data.Value {
		return data.Int(int64(a[0].AsTime().UTC().Year()))
	}},
	"MONTH": {data.KindInt, true, 1, func(a []data.Value, _ *EvalContext) data.Value {
		return data.Int(int64(a[0].AsTime().UTC().Month()))
	}},
	"DAY": {data.KindInt, true, 1, func(a []data.Value, _ *EvalContext) data.Value {
		return data.Int(int64(a[0].AsTime().UTC().Day()))
	}},
	"HOUR": {data.KindInt, true, 1, func(a []data.Value, _ *EvalContext) data.Value {
		return data.Int(int64(a[0].AsTime().UTC().Hour()))
	}},
	"LOWER": {data.KindString, true, 1, func(a []data.Value, _ *EvalContext) data.Value {
		return data.String_(strings.ToLower(a[0].String()))
	}},
	"UPPER": {data.KindString, true, 1, func(a []data.Value, _ *EvalContext) data.Value {
		return data.String_(strings.ToUpper(a[0].String()))
	}},
	"LEN": {data.KindInt, true, 1, func(a []data.Value, _ *EvalContext) data.Value {
		return data.Int(int64(len(a[0].String())))
	}},
	"ABS": {data.KindFloat, true, 1, func(a []data.Value, _ *EvalContext) data.Value {
		f := a[0].AsFloat()
		if f < 0 {
			f = -f
		}
		return data.Float(f)
	}},
	"ROUND": {data.KindInt, true, 1, func(a []data.Value, _ *EvalContext) data.Value {
		f := a[0].AsFloat()
		if f >= 0 {
			return data.Int(int64(f + 0.5))
		}
		return data.Int(int64(f - 0.5))
	}},
	"ISNULL": {data.KindBool, true, 1, func(a []data.Value, _ *EvalContext) data.Value {
		return data.Bool(a[0].IsNull())
	}},
	"COALESCE": {data.KindNull, true, -1, func(a []data.Value, _ *EvalContext) data.Value {
		for _, v := range a {
			if !v.IsNull() {
				return v
			}
		}
		return data.Null()
	}},
	"HASHBUCKET": {data.KindInt, true, 2, func(a []data.Value, _ *EvalContext) data.Value {
		n := a[1].AsInt()
		if n <= 0 {
			return data.Null()
		}
		var h uint64 = 1469598103934665603
		for _, c := range []byte(a[0].String()) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		return data.Int(int64(h % uint64(n)))
	}},
	// Non-deterministic builtins.
	"NOW": {data.KindTime, false, 0, func(_ []data.Value, ctx *EvalContext) data.Value {
		return data.Value{Kind: data.KindTime, I: ctx.NowNanos}
	}},
	"UTCNOW": {data.KindTime, false, 0, func(_ []data.Value, ctx *EvalContext) data.Value {
		return data.Value{Kind: data.KindTime, I: ctx.NowNanos}
	}},
	"NEWGUID": {data.KindString, false, 0, func(_ []data.Value, ctx *EvalContext) data.Value {
		ctx.guidSeq++
		return data.String_(fmt.Sprintf("%016x-%08x", ctx.Rand.Uint64(), ctx.guidSeq))
	}},
	"RANDOM": {data.KindFloat, false, 0, func(_ []data.Value, ctx *EvalContext) data.Value {
		return data.Float(ctx.Rand.Float64())
	}},
}

// IsDeterministicFunc reports whether the named builtin is deterministic.
// Unknown functions are conservatively treated as non-deterministic, matching
// the paper's policy of skipping reuse when semantics are unclear.
func IsDeterministicFunc(name string) bool {
	spec, ok := builtins[strings.ToUpper(name)]
	return ok && spec.deterministic
}

// KnownFunc reports whether the builtin exists.
func KnownFunc(name string) bool {
	_, ok := builtins[strings.ToUpper(name)]
	return ok
}

func (f *Call) Eval(row data.Row, ctx *EvalContext) data.Value {
	spec, ok := builtins[f.Name]
	if !ok {
		return data.Null()
	}
	args := make([]data.Value, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.Eval(row, ctx)
	}
	if spec.arity >= 0 && len(args) != spec.arity {
		return data.Null()
	}
	if ctx == nil {
		ctx = &EvalContext{Rand: data.NewRand(1)}
	}
	return spec.eval(args, ctx)
}

func (c *ColRef) Canonical() string {
	return fmt.Sprintf("col:%s#%d", strings.ToLower(c.Name), c.Index)
}
func (c *Const) Canonical() string { return "lit:" + c.Val.Kind.String() + ":" + c.Val.String() }
func (p *Param) Canonical() string { return "param:" + p.Name + "=" + p.Val.String() }
func (b *Binary) Canonical() string {
	return "(" + b.L.Canonical() + " " + b.Op + " " + b.R.Canonical() + ")"
}
func (u *Unary) Canonical() string { return "(" + u.Op + " " + u.E.Canonical() + ")" }
func (f *Call) Canonical() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.Canonical()
	}
	return f.Name + "(" + strings.Join(args, ",") + ")"
}

func (c *ColRef) CanonicalRecurring() string { return c.Canonical() }
func (c *Const) CanonicalRecurring() string  { return c.Canonical() }
func (p *Param) CanonicalRecurring() string  { return "param:" + p.Name }
func (b *Binary) CanonicalRecurring() string {
	return "(" + b.L.CanonicalRecurring() + " " + b.Op + " " + b.R.CanonicalRecurring() + ")"
}
func (u *Unary) CanonicalRecurring() string { return "(" + u.Op + " " + u.E.CanonicalRecurring() + ")" }
func (f *Call) CanonicalRecurring() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.CanonicalRecurring()
	}
	return f.Name + "(" + strings.Join(args, ",") + ")"
}

func (c *ColRef) Walk(fn func(Expr)) { fn(c) }
func (c *Const) Walk(fn func(Expr))  { fn(c) }
func (p *Param) Walk(fn func(Expr))  { fn(p) }
func (b *Binary) Walk(fn func(Expr)) { fn(b); b.L.Walk(fn); b.R.Walk(fn) }
func (u *Unary) Walk(fn func(Expr))  { fn(u); u.E.Walk(fn) }
func (f *Call) Walk(fn func(Expr)) {
	fn(f)
	for _, a := range f.Args {
		a.Walk(fn)
	}
}

// HasNondeterminism reports whether the expression tree contains a
// non-deterministic function call.
func HasNondeterminism(e Expr) bool {
	found := false
	e.Walk(func(x Expr) {
		if c, ok := x.(*Call); ok && !IsDeterministicFunc(c.Name) {
			found = true
		}
	})
	return found
}

// RemapColumns rewrites every ColRef index through the mapping (old index →
// new index). It returns a deep copy; the input is not mutated. Indexes
// absent from the map are preserved.
func RemapColumns(e Expr, mapping map[int]int) Expr {
	switch x := e.(type) {
	case *ColRef:
		idx := x.Index
		if ni, ok := mapping[idx]; ok {
			idx = ni
		}
		return &ColRef{Index: idx, Name: x.Name, Typ: x.Typ}
	case *Const:
		return &Const{Val: x.Val}
	case *Param:
		return &Param{Name: x.Name, Val: x.Val}
	case *Binary:
		return &Binary{Op: x.Op, L: RemapColumns(x.L, mapping), R: RemapColumns(x.R, mapping)}
	case *Unary:
		return &Unary{Op: x.Op, E: RemapColumns(x.E, mapping)}
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RemapColumns(a, mapping)
		}
		return &Call{Name: x.Name, Args: args}
	default:
		return e
	}
}

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr { return RemapColumns(e, nil) }

// ColumnsUsed returns the set of input column indexes referenced.
func ColumnsUsed(e Expr) map[int]bool {
	out := make(map[int]bool)
	e.Walk(func(x Expr) {
		if c, ok := x.(*ColRef); ok {
			out[c.Index] = true
		}
	})
	return out
}
