package plan_test

import (
	"strings"
	"testing"

	"cloudviews/internal/plan"
)

// TestFormatGolden pins the plan rendering for the Figure 4 query so
// accidental changes to operator attributes (which feed signatures) are
// caught loudly.
func TestFormatGolden(t *testing.T) {
	n := mustBind(t, `SELECT CustomerId, AVG(Price * Quantity) AS avg_sales
		FROM Sales JOIN Customer ON Sales.CustomerId = Customer.Id
		WHERE MktSegment = 'Asia'
		GROUP BY CustomerId`, nil)
	n = plan.NormalizeNode(n)
	got := plan.Format(n)
	want := strings.Join([]string{
		"Aggregate[groupby=[col:customerid#1],aggs=[AVG((col:price#3 * col:quantity#4))->avg_sales]]",
		"  Filter[pred=(col:mktsegment#9 = lit:STRING:Asia)]",
		"    Join[keys=[col:customerid#1=col:id#0]]",
	}, "\n")
	if !strings.HasPrefix(got, want) {
		t.Errorf("format drifted:\n%s\nwant prefix:\n%s", got, want)
	}
	if !strings.Contains(got, "Scan[ds=Sales,guid=") || !strings.Contains(got, "Scan[ds=Customer,guid=") {
		t.Errorf("scans missing:\n%s", got)
	}
}

func TestCountNodes(t *testing.T) {
	n := mustBind(t, `SELECT Name FROM Customer WHERE Id > 5`, nil)
	if got := plan.CountNodes(n); got != 3 { // Project, Filter, Scan
		t.Errorf("CountNodes = %d, want 3\n%s", got, plan.Format(n))
	}
}

func TestWalkOrder(t *testing.T) {
	n := mustBind(t, `SELECT Price FROM Sales JOIN Customer ON Sales.CustomerId = Customer.Id`, nil)
	var ops []string
	plan.Walk(n, func(m plan.Node) { ops = append(ops, m.OpName()) })
	joined := strings.Join(ops, ",")
	if joined != "Project,Join,Scan,Scan" {
		t.Errorf("walk order = %s", joined)
	}
}

func TestJoinAlgoStrings(t *testing.T) {
	cases := map[plan.JoinAlgo]string{
		plan.JoinAuto:  "Auto",
		plan.JoinHash:  "Hash Join",
		plan.JoinMerge: "Merge Join",
		plan.JoinLoop:  "Loop Join",
	}
	for algo, want := range cases {
		if algo.String() != want {
			t.Errorf("%d = %q, want %q", algo, algo.String(), want)
		}
	}
}

func TestSpoolTransparentInSchema(t *testing.T) {
	n := mustBind(t, `SELECT Name FROM Customer WHERE Id > 5`, nil)
	sp := &plan.Spool{Child: n, StrictSig: "x", Path: "p"}
	if !sp.Schema().Equal(n.Schema()) {
		t.Error("spool must preserve schema")
	}
	if len(sp.Children()) != 1 {
		t.Error("spool has one child")
	}
}

func TestUDOAttrsStableUnderDependsOrder(t *testing.T) {
	a := &plan.UDO{Name: "X", Depends: []string{"libB", "libA"}}
	b := &plan.UDO{Name: "X", Depends: []string{"libA", "libB"}}
	if a.Attrs(false) != b.Attrs(false) {
		t.Error("dependency order must not affect signatures")
	}
}
