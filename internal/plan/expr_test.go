package plan_test

import (
	"testing"
	"time"

	"cloudviews/internal/data"
	"cloudviews/internal/plan"
)

func TestBinaryKinds(t *testing.T) {
	icol := &plan.ColRef{Index: 0, Name: "i", Typ: data.KindInt}
	fcol := &plan.ColRef{Index: 1, Name: "f", Typ: data.KindFloat}
	scol := &plan.ColRef{Index: 2, Name: "s", Typ: data.KindString}
	cases := []struct {
		e    plan.Expr
		want data.Kind
	}{
		{&plan.Binary{Op: "+", L: icol, R: icol}, data.KindInt},
		{&plan.Binary{Op: "+", L: icol, R: fcol}, data.KindFloat},
		{&plan.Binary{Op: "+", L: scol, R: icol}, data.KindString},
		{&plan.Binary{Op: "/", L: icol, R: icol}, data.KindFloat},
		{&plan.Binary{Op: "=", L: icol, R: icol}, data.KindBool},
		{&plan.Binary{Op: "AND", L: icol, R: icol}, data.KindBool},
		{&plan.Unary{Op: "NOT", E: icol}, data.KindBool},
		{&plan.Unary{Op: "-", E: fcol}, data.KindFloat},
		{&plan.Call{Name: "YEAR", Args: []plan.Expr{icol}}, data.KindInt},
		{&plan.Call{Name: "LOWER", Args: []plan.Expr{scol}}, data.KindString},
		{&plan.Call{Name: "NOW"}, data.KindTime},
	}
	for i, c := range cases {
		if got := c.e.Kind(); got != c.want {
			t.Errorf("case %d: Kind = %v, want %v", i, got, c.want)
		}
	}
}

func TestArithmeticEval(t *testing.T) {
	row := data.Row{data.Int(10), data.Float(2.5), data.String_("ab")}
	icol := &plan.ColRef{Index: 0, Typ: data.KindInt}
	fcol := &plan.ColRef{Index: 1, Typ: data.KindFloat}
	scol := &plan.ColRef{Index: 2, Typ: data.KindString}
	cases := []struct {
		e    plan.Expr
		want data.Value
	}{
		{&plan.Binary{Op: "+", L: icol, R: icol}, data.Int(20)},
		{&plan.Binary{Op: "*", L: icol, R: fcol}, data.Float(25)},
		{&plan.Binary{Op: "-", L: icol, R: icol}, data.Int(0)},
		{&plan.Binary{Op: "%", L: icol, R: &plan.Const{Val: data.Int(3)}}, data.Int(1)},
		{&plan.Binary{Op: "+", L: scol, R: icol}, data.String_("ab10")},
		{&plan.Unary{Op: "-", E: icol}, data.Int(-10)},
	}
	for i, c := range cases {
		got := c.e.Eval(row, nil)
		if !got.Equal(c.want) {
			t.Errorf("case %d: Eval = %v, want %v", i, got, c.want)
		}
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// FALSE AND <anything> must not need the right side's columns.
	f := &plan.Const{Val: data.Bool(false)}
	danger := &plan.ColRef{Index: 99, Typ: data.KindBool} // out of range → NULL, not panic
	e := &plan.Binary{Op: "AND", L: f, R: danger}
	if got := e.Eval(data.Row{}, nil); got.B {
		t.Error("false AND x = false")
	}
	tr := &plan.Const{Val: data.Bool(true)}
	e2 := &plan.Binary{Op: "OR", L: tr, R: danger}
	if got := e2.Eval(data.Row{}, nil); !got.B {
		t.Error("true OR x = true")
	}
}

func TestNondeterministicBuiltins(t *testing.T) {
	ctx := &plan.EvalContext{NowNanos: time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC).UnixNano(), Rand: data.NewRand(1)}
	now := (&plan.Call{Name: "NOW"}).Eval(nil, ctx)
	if now.AsTime().UTC().Year() != 2020 {
		t.Errorf("NOW = %v", now)
	}
	g1 := (&plan.Call{Name: "NEWGUID"}).Eval(nil, ctx)
	g2 := (&plan.Call{Name: "NEWGUID"}).Eval(nil, ctx)
	if g1.S == g2.S {
		t.Error("NEWGUID must produce fresh values")
	}
	r := (&plan.Call{Name: "RANDOM"}).Eval(nil, ctx)
	if r.F < 0 || r.F >= 1 {
		t.Errorf("RANDOM = %g", r.F)
	}
}

func TestCoalesceAndHashBucket(t *testing.T) {
	null := &plan.Const{Val: data.Null()}
	five := &plan.Const{Val: data.Int(5)}
	c := &plan.Call{Name: "COALESCE", Args: []plan.Expr{null, five}}
	if got := c.Eval(nil, nil); got.I != 5 {
		t.Errorf("COALESCE = %v", got)
	}
	hb := &plan.Call{Name: "HASHBUCKET", Args: []plan.Expr{&plan.Const{Val: data.String_("key")}, &plan.Const{Val: data.Int(16)}}}
	got := hb.Eval(nil, nil)
	if got.I < 0 || got.I >= 16 {
		t.Errorf("HASHBUCKET = %v", got)
	}
	// Stable.
	if hb.Eval(nil, nil).I != got.I {
		t.Error("HASHBUCKET must be deterministic")
	}
}

func TestParamCanonicalForms(t *testing.T) {
	p := &plan.Param{Name: "cutoff", Val: data.Int(42)}
	if p.Canonical() == p.CanonicalRecurring() {
		t.Error("strict and recurring canonical forms must differ for params")
	}
	q := &plan.Param{Name: "cutoff", Val: data.Int(99)}
	if p.CanonicalRecurring() != q.CanonicalRecurring() {
		t.Error("recurring form must ignore the value")
	}
	if p.Canonical() == q.Canonical() {
		t.Error("strict form must include the value")
	}
}

func TestColumnsUsedAndClone(t *testing.T) {
	e := &plan.Binary{Op: "+",
		L: &plan.ColRef{Index: 2, Typ: data.KindInt},
		R: &plan.Binary{Op: "*",
			L: &plan.ColRef{Index: 5, Typ: data.KindInt},
			R: &plan.Const{Val: data.Int(2)}}}
	used := plan.ColumnsUsed(e)
	if len(used) != 2 || !used[2] || !used[5] {
		t.Errorf("ColumnsUsed = %v", used)
	}
	c := plan.CloneExpr(e)
	if c.Canonical() != e.Canonical() {
		t.Error("clone must render identically")
	}
}
