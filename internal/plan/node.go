package plan

import (
	"fmt"
	"sort"
	"strings"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
)

// Node is a logical plan operator.
type Node interface {
	// Schema is the output schema of the operator.
	Schema() data.Schema
	// Children returns input operators, left to right.
	Children() []Node
	// WithChildren returns a shallow copy with the given children. len must
	// match Children().
	WithChildren(children []Node) Node
	// OpName is the stable operator name used in signatures and display.
	OpName() string
	// Attrs renders the operator's own attributes (not children) in the
	// canonical form consumed by signatures. When recurring is true,
	// time-varying attributes (input GUIDs, parameter values) are omitted.
	Attrs(recurring bool) string
}

// Scan reads one immutable version of a dataset.
type Scan struct {
	Dataset string
	GUID    catalog.GUID
	Out     data.Schema
	// BaseRows is the catalog cardinality at bind time, used by the
	// compile-time estimator.
	BaseRows int64
}

// Filter retains rows satisfying Pred.
type Filter struct {
	Pred  Expr
	Child Node
}

// Project computes output columns from input rows.
type Project struct {
	Exprs []Expr
	Names []string
	Child Node
}

// Join is an inner equi-join with optional residual predicate. LeftKeys[i]
// pairs with RightKeys[i]; RightKeys are bound against the RIGHT child's
// schema (not the concatenated schema). Residual is bound against the
// concatenated schema.
type Join struct {
	LeftKeys  []Expr
	RightKeys []Expr
	Residual  Expr
	L, R      Node
	// Algo is the physical algorithm chosen by the optimizer. It is a
	// physical property and deliberately excluded from Attrs: plans that
	// differ only in join implementation share logical signatures (the paper
	// reuses "the exact same logical query subexpressions, although they can
	// have different physical implementations").
	Algo JoinAlgo
}

// JoinAlgo enumerates physical join implementations.
type JoinAlgo uint8

const (
	JoinAuto JoinAlgo = iota
	JoinHash
	JoinMerge
	JoinLoop
)

// String names the algorithm as reported in telemetry (Figure 9).
func (a JoinAlgo) String() string {
	switch a {
	case JoinHash:
		return "Hash Join"
	case JoinMerge:
		return "Merge Join"
	case JoinLoop:
		return "Loop Join"
	default:
		return "Auto"
	}
}

// AggKind enumerates aggregate functions.
type AggKind uint8

const (
	AggSum AggKind = iota
	AggAvg
	AggCount
	AggMin
	AggMax
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AGG(%d)", uint8(k))
	}
}

// AggSpec is one aggregate in an Aggregate node. Arg is nil for COUNT(*).
type AggSpec struct {
	Kind AggKind
	Arg  Expr
	Name string
}

// Aggregate groups by GroupBy and computes Aggs. Output schema is the group
// columns (named GroupNames) followed by the aggregate columns.
type Aggregate struct {
	GroupBy    []Expr
	GroupNames []string
	Aggs       []AggSpec
	Child      Node
}

// Union is UNION ALL of two inputs with identical schemas.
type Union struct {
	L, R Node
}

// UDO applies a registered user-defined operator. Depends lists library
// dependencies (the paper's recursive dependency chains); Nondet marks
// operators containing non-determinism by design.
type UDO struct {
	Name    string
	Depends []string
	Nondet  bool
	Child   Node
}

// Sample retains approximately Percent% of input rows (deterministic hash
// sampling so results are reproducible).
type Sample struct {
	Percent float64
	Child   Node
}

// Sort orders the child rowset by Keys (Desc[i] flips key i). SCOPE sorts
// are most often the final presentation step of a job.
type Sort struct {
	Keys  []Expr
	Desc  []bool
	Child Node
}

func (s *Sort) Schema() data.Schema { return s.Child.Schema() }
func (s *Sort) Children() []Node    { return []Node{s.Child} }
func (s *Sort) WithChildren(c []Node) Node {
	cp := *s
	cp.Child = c[0]
	return &cp
}
func (s *Sort) OpName() string { return "Sort" }
func (s *Sort) Attrs(recurring bool) string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		var ks string
		if recurring {
			ks = k.CanonicalRecurring()
		} else {
			ks = k.Canonical()
		}
		if s.Desc[i] {
			ks += " desc"
		}
		parts[i] = ks
	}
	return "keys=[" + strings.Join(parts, ";") + "]"
}

// Output writes the child rowset to a target stream; it is the root of every
// job plan.
type Output struct {
	Target string
	Child  Node
}

// Spool materializes the child subexpression to stable storage while also
// streaming it to its parent — the paper's online-materialization operator
// with two consumers. Inserted by the optimizer's follow-up phase.
type Spool struct {
	Child Node
	// StrictSig identifies the materialized artifact; the optimizer encodes
	// it into the output path per the paper's architecture.
	StrictSig string
	Path      string
	// VC is the virtual cluster charged for the artifact's bytes.
	VC string
}

// ViewScan reads a previously materialized view instead of recomputing the
// common subexpression. Rows/Bytes carry the exact statistics observed when
// the view was built, which the optimizer feeds to the rest of the plan.
type ViewScan struct {
	StrictSig string
	// RecurringSig is the recurring signature of the replaced subexpression.
	// Signature computation returns the replaced subexpression's signatures
	// for a ViewScan, so every ancestor's signature is unchanged by the
	// rewrite — matching larger subexpressions and history recording keep
	// working above a reused view.
	RecurringSig string
	Path         string
	Out          data.Schema
	Rows         int64
	Bytes        int64
	// ReplacedOp names the root operator of the replaced subexpression, kept
	// for telemetry (e.g., the Figure 9 join analysis).
	ReplacedOp string
	// Fallback is the replaced subexpression, kept out-of-band so the
	// executor can transparently recompute it when the view artifact cannot
	// be read (reuse must never fail a job). It is deliberately NOT a child:
	// Children() excludes it, so signatures, plan formatting, and stage
	// construction are unchanged by carrying it.
	Fallback Node
}

func (s *Scan) Schema() data.Schema { return s.Out }
func (s *Scan) Children() []Node    { return nil }
func (s *Scan) WithChildren(c []Node) Node {
	cp := *s
	return &cp
}
func (s *Scan) OpName() string { return "Scan" }
func (s *Scan) Attrs(recurring bool) string {
	if recurring {
		return "ds=" + s.Dataset
	}
	return "ds=" + s.Dataset + ",guid=" + string(s.GUID)
}

func (f *Filter) Schema() data.Schema { return f.Child.Schema() }
func (f *Filter) Children() []Node    { return []Node{f.Child} }
func (f *Filter) WithChildren(c []Node) Node {
	cp := *f
	cp.Child = c[0]
	return &cp
}
func (f *Filter) OpName() string { return "Filter" }
func (f *Filter) Attrs(recurring bool) string {
	if recurring {
		return "pred=" + f.Pred.CanonicalRecurring()
	}
	return "pred=" + f.Pred.Canonical()
}

func (p *Project) Schema() data.Schema {
	out := make(data.Schema, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = data.Column{Name: p.Names[i], Kind: e.Kind()}
	}
	return out
}
func (p *Project) Children() []Node { return []Node{p.Child} }
func (p *Project) WithChildren(c []Node) Node {
	cp := *p
	cp.Child = c[0]
	return &cp
}
func (p *Project) OpName() string { return "Project" }
func (p *Project) Attrs(recurring bool) string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		var s string
		if recurring {
			s = e.CanonicalRecurring()
		} else {
			s = e.Canonical()
		}
		parts[i] = strings.ToLower(p.Names[i]) + "<-" + s
	}
	return "exprs=[" + strings.Join(parts, ";") + "]"
}

func (j *Join) Schema() data.Schema {
	l, r := j.L.Schema(), j.R.Schema()
	out := make(data.Schema, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}
func (j *Join) Children() []Node { return []Node{j.L, j.R} }
func (j *Join) WithChildren(c []Node) Node {
	cp := *j
	cp.L, cp.R = c[0], c[1]
	return &cp
}
func (j *Join) OpName() string { return "Join" }
func (j *Join) Attrs(recurring bool) string {
	canon := func(e Expr) string {
		if recurring {
			return e.CanonicalRecurring()
		}
		return e.Canonical()
	}
	pairs := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		pairs[i] = canon(j.LeftKeys[i]) + "=" + canon(j.RightKeys[i])
	}
	// Key pairs are order-insensitive for matching purposes.
	sort.Strings(pairs)
	s := "keys=[" + strings.Join(pairs, ";") + "]"
	if j.Residual != nil {
		s += ",residual=" + canon(j.Residual)
	}
	return s
}

func (a *Aggregate) Schema() data.Schema {
	out := make(data.Schema, 0, len(a.GroupBy)+len(a.Aggs))
	for i, g := range a.GroupBy {
		out = append(out, data.Column{Name: a.GroupNames[i], Kind: g.Kind()})
	}
	for _, spec := range a.Aggs {
		out = append(out, data.Column{Name: spec.Name, Kind: aggResultKind(spec)})
	}
	return out
}

func aggResultKind(spec AggSpec) data.Kind {
	switch spec.Kind {
	case AggCount:
		return data.KindInt
	case AggAvg:
		return data.KindFloat
	case AggSum:
		if spec.Arg != nil && spec.Arg.Kind() == data.KindInt {
			return data.KindInt
		}
		return data.KindFloat
	default: // MIN/MAX follow the argument
		if spec.Arg != nil {
			return spec.Arg.Kind()
		}
		return data.KindNull
	}
}

func (a *Aggregate) Children() []Node { return []Node{a.Child} }
func (a *Aggregate) WithChildren(c []Node) Node {
	cp := *a
	cp.Child = c[0]
	return &cp
}
func (a *Aggregate) OpName() string { return "Aggregate" }
func (a *Aggregate) Attrs(recurring bool) string {
	canon := func(e Expr) string {
		if e == nil {
			return "*"
		}
		if recurring {
			return e.CanonicalRecurring()
		}
		return e.Canonical()
	}
	groups := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groups[i] = canon(g)
	}
	aggs := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		aggs[i] = s.Kind.String() + "(" + canon(s.Arg) + ")->" + strings.ToLower(s.Name)
	}
	return "groupby=[" + strings.Join(groups, ";") + "],aggs=[" + strings.Join(aggs, ";") + "]"
}

func (u *Union) Schema() data.Schema { return u.L.Schema() }
func (u *Union) Children() []Node    { return []Node{u.L, u.R} }
func (u *Union) WithChildren(c []Node) Node {
	cp := *u
	cp.L, cp.R = c[0], c[1]
	return &cp
}
func (u *Union) OpName() string              { return "Union" }
func (u *Union) Attrs(recurring bool) string { return "" }

func (u *UDO) Schema() data.Schema {
	if fn, ok := LookupUDO(u.Name); ok {
		return fn.OutSchema(u.Child.Schema())
	}
	return u.Child.Schema()
}
func (u *UDO) Children() []Node { return []Node{u.Child} }
func (u *UDO) WithChildren(c []Node) Node {
	cp := *u
	cp.Child = c[0]
	return &cp
}
func (u *UDO) OpName() string { return "UDO" }
func (u *UDO) Attrs(recurring bool) string {
	deps := append([]string(nil), u.Depends...)
	sort.Strings(deps)
	return fmt.Sprintf("udo=%s,deps=[%s],nondet=%t", u.Name, strings.Join(deps, ";"), u.Nondet)
}

func (s *Sample) Schema() data.Schema { return s.Child.Schema() }
func (s *Sample) Children() []Node    { return []Node{s.Child} }
func (s *Sample) WithChildren(c []Node) Node {
	cp := *s
	cp.Child = c[0]
	return &cp
}
func (s *Sample) OpName() string              { return "Sample" }
func (s *Sample) Attrs(recurring bool) string { return fmt.Sprintf("pct=%g", s.Percent) }

func (o *Output) Schema() data.Schema { return o.Child.Schema() }
func (o *Output) Children() []Node    { return []Node{o.Child} }
func (o *Output) WithChildren(c []Node) Node {
	cp := *o
	cp.Child = c[0]
	return &cp
}
func (o *Output) OpName() string { return "Output" }
func (o *Output) Attrs(recurring bool) string {
	if recurring {
		// Output targets often embed dates; treat as time-varying.
		return ""
	}
	return "target=" + o.Target
}

func (s *Spool) Schema() data.Schema { return s.Child.Schema() }
func (s *Spool) Children() []Node    { return []Node{s.Child} }
func (s *Spool) WithChildren(c []Node) Node {
	cp := *s
	cp.Child = c[0]
	return &cp
}
func (s *Spool) OpName() string              { return "Spool" }
func (s *Spool) Attrs(recurring bool) string { return "" } // transparent to signatures

func (v *ViewScan) Schema() data.Schema { return v.Out }
func (v *ViewScan) Children() []Node    { return nil }
func (v *ViewScan) WithChildren(c []Node) Node {
	cp := *v
	return &cp
}
func (v *ViewScan) OpName() string              { return "ViewScan" }
func (v *ViewScan) Attrs(recurring bool) string { return "view=" + v.StrictSig }

// Walk visits n then its children depth-first, pre-order.
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// Rewrite rebuilds the tree bottom-up, applying fn to every node after its
// children have been rewritten. fn may return the node unchanged.
func Rewrite(n Node, fn func(Node) Node) Node {
	children := n.Children()
	if len(children) > 0 {
		newChildren := make([]Node, len(children))
		changed := false
		for i, c := range children {
			newChildren[i] = Rewrite(c, fn)
			if newChildren[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.WithChildren(newChildren)
		}
	}
	return fn(n)
}

// CountNodes returns the number of operators in the tree.
func CountNodes(n Node) int {
	count := 0
	Walk(n, func(Node) { count++ })
	return count
}

// Format renders an indented tree for display and golden tests.
func Format(n Node) string {
	var sb strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.OpName())
		if a := n.Attrs(false); a != "" {
			sb.WriteString("[" + a + "]")
		}
		sb.WriteString("\n")
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return sb.String()
}
