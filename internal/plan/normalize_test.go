package plan_test

import (
	"testing"
	"testing/quick"

	"cloudviews/internal/data"
	"cloudviews/internal/plan"
)

func col(i int, name string) plan.Expr {
	return &plan.ColRef{Index: i, Name: name, Typ: data.KindInt}
}

func lit(v int64) plan.Expr { return &plan.Const{Val: data.Int(v)} }

func bin(op string, l, r plan.Expr) plan.Expr { return &plan.Binary{Op: op, L: l, R: r} }

func TestNormalizeCommutativeOrder(t *testing.T) {
	a := bin("=", col(0, "a"), col(1, "b"))
	b := bin("=", col(1, "b"), col(0, "a"))
	if plan.NormalizeExpr(a).Canonical() != plan.NormalizeExpr(b).Canonical() {
		t.Error("a=b and b=a must normalize identically")
	}
}

func TestNormalizeAndOrderAndFlatten(t *testing.T) {
	p1 := bin("AND", bin("AND", col(0, "a"), col(1, "b")), col(2, "c"))
	p2 := bin("AND", col(2, "c"), bin("AND", col(1, "b"), col(0, "a")))
	if plan.NormalizeExpr(p1).Canonical() != plan.NormalizeExpr(p2).Canonical() {
		t.Error("AND chains must normalize to canonical order")
	}
}

func TestNormalizeComparisonFlip(t *testing.T) {
	gt := bin(">", col(0, "a"), lit(5))
	lt := bin("<", lit(5), col(0, "a"))
	if plan.NormalizeExpr(gt).Canonical() != plan.NormalizeExpr(lt).Canonical() {
		t.Errorf("a>5 and 5<a must match: %s vs %s",
			plan.NormalizeExpr(gt).Canonical(), plan.NormalizeExpr(lt).Canonical())
	}
}

func TestNormalizeConstantFolding(t *testing.T) {
	e := bin("+", lit(2), lit(3))
	n := plan.NormalizeExpr(e)
	c, ok := n.(*plan.Const)
	if !ok || c.Val.I != 5 {
		t.Errorf("2+3 should fold to 5, got %s", n.Canonical())
	}
}

func TestNormalizeBoolShortcuts(t *testing.T) {
	f := &plan.Const{Val: data.Bool(false)}
	tr := &plan.Const{Val: data.Bool(true)}
	e := bin("AND", col(0, "a"), f)
	if n := plan.NormalizeExpr(e); n.Canonical() != f.Canonical() {
		t.Errorf("x AND false should fold to false, got %s", n.Canonical())
	}
	e2 := bin("OR", col(0, "a"), tr)
	if n := plan.NormalizeExpr(e2); n.Canonical() != tr.Canonical() {
		t.Errorf("x OR true should fold to true, got %s", n.Canonical())
	}
	e3 := bin("AND", col(0, "a"), tr)
	if n := plan.NormalizeExpr(e3); n.Canonical() != col(0, "a").Canonical() {
		t.Errorf("x AND true should fold to x, got %s", n.Canonical())
	}
}

func TestNormalizeDoubleNegation(t *testing.T) {
	e := &plan.Unary{Op: "NOT", E: &plan.Unary{Op: "NOT", E: col(0, "a")}}
	if n := plan.NormalizeExpr(e); n.Canonical() != col(0, "a").Canonical() {
		t.Errorf("NOT NOT x should fold, got %s", n.Canonical())
	}
}

func TestNormalizeStringConcatNotReordered(t *testing.T) {
	a := &plan.Const{Val: data.String_("a")}
	b := &plan.Const{Val: data.String_("b")}
	n := plan.NormalizeExpr(bin("+", b, a))
	c, ok := n.(*plan.Const)
	if !ok || c.Val.S != "ba" {
		t.Errorf("string concat must preserve order, got %s", n.Canonical())
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	exprs := []plan.Expr{
		bin("AND", bin(">", col(0, "a"), lit(1)), bin("=", col(1, "b"), col(2, "c"))),
		bin("OR", bin("<=", lit(3), col(0, "a")), &plan.Unary{Op: "NOT", E: col(1, "b")}),
		bin("*", bin("+", col(0, "a"), lit(0)), lit(2)),
	}
	for _, e := range exprs {
		once := plan.NormalizeExpr(e)
		twice := plan.NormalizeExpr(once)
		if once.Canonical() != twice.Canonical() {
			t.Errorf("not idempotent: %s -> %s", once.Canonical(), twice.Canonical())
		}
	}
}

// Property: normalization preserves evaluation on random rows for a family of
// generated predicates.
func TestNormalizePreservesSemantics(t *testing.T) {
	f := func(av, bv int64, opPick uint8, flip bool) bool {
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		op := ops[int(opPick)%len(ops)]
		var e plan.Expr = bin(op, col(0, "a"), col(1, "b"))
		if flip {
			e = bin("AND", e, bin("=", lit(1), lit(1)))
		}
		row := data.Row{data.Int(av), data.Int(bv)}
		before := e.Eval(row, nil)
		after := plan.NormalizeExpr(e).Eval(row, nil)
		return before.Equal(after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeNodeJoinKeyOrder(t *testing.T) {
	mk := func(swapped bool) plan.Node {
		l := &plan.Scan{Dataset: "L", Out: data.Schema{{Name: "a", Kind: data.KindInt}, {Name: "b", Kind: data.KindInt}}}
		r := &plan.Scan{Dataset: "R", Out: data.Schema{{Name: "x", Kind: data.KindInt}, {Name: "y", Kind: data.KindInt}}}
		j := &plan.Join{L: l, R: r}
		if swapped {
			j.LeftKeys = []plan.Expr{col(1, "b"), col(0, "a")}
			j.RightKeys = []plan.Expr{col(1, "y"), col(0, "x")}
		} else {
			j.LeftKeys = []plan.Expr{col(0, "a"), col(1, "b")}
			j.RightKeys = []plan.Expr{col(0, "x"), col(1, "y")}
		}
		return j
	}
	n1 := plan.NormalizeNode(mk(false))
	n2 := plan.NormalizeNode(mk(true))
	if n1.Attrs(false) != n2.Attrs(false) {
		t.Errorf("join key order should canonicalize:\n%s\n%s", n1.Attrs(false), n2.Attrs(false))
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"", "%", true},
		{"abc", "", false},
		{"a%b", "a%b", true},
	}
	for _, c := range cases {
		e := bin("LIKE", &plan.Const{Val: data.String_(c.s)}, &plan.Const{Val: data.String_(c.p)})
		got := e.Eval(nil, nil)
		if got.B != c.want {
			t.Errorf("LIKE(%q,%q) = %v, want %v", c.s, c.p, got.B, c.want)
		}
	}
}

func TestRemapColumns(t *testing.T) {
	e := bin("+", col(2, "a"), col(5, "b"))
	m := plan.RemapColumns(e, map[int]int{2: 0, 5: 1})
	row := data.Row{data.Int(10), data.Int(20)}
	if got := m.Eval(row, nil); got.I != 30 {
		t.Errorf("remapped eval = %v, want 30", got)
	}
	// Original untouched.
	longRow := data.Row{data.Int(0), data.Int(0), data.Int(1), data.Int(0), data.Int(0), data.Int(2)}
	if got := e.Eval(longRow, nil); got.I != 3 {
		t.Errorf("original mutated: %v", got)
	}
}

func TestHasNondeterminism(t *testing.T) {
	det := &plan.Call{Name: "LOWER", Args: []plan.Expr{col(0, "a")}}
	nondet := &plan.Call{Name: "NOW"}
	if plan.HasNondeterminism(det) {
		t.Error("LOWER is deterministic")
	}
	if !plan.HasNondeterminism(nondet) {
		t.Error("NOW is non-deterministic")
	}
	nested := bin("AND", col(0, "a"), &plan.Call{Name: "RANDOM"})
	if !plan.HasNondeterminism(nested) {
		t.Error("nested RANDOM must be detected")
	}
}
