package plan

import (
	"strings"
	"sync"

	"cloudviews/internal/data"
)

// UDOImpl is the executable implementation of a user-defined operator. SCOPE
// UDOs are arbitrary C# row processors; here they are Go functions registered
// by name. Apply may emit zero or more rows per input row.
type UDOImpl struct {
	Name string
	// OutSchema derives the output schema from the input schema.
	OutSchema func(in data.Schema) data.Schema
	// Apply processes one input row.
	Apply func(in data.Row, emit func(data.Row), ctx *EvalContext)
	// Deterministic reports whether the implementation is free of
	// non-determinism. Operators marked false are excluded from reuse, per
	// the paper's signature-correctness policy.
	Deterministic bool
}

var (
	udoMu       sync.RWMutex
	udoRegistry = map[string]*UDOImpl{}
)

// RegisterUDO installs an implementation, replacing any previous registration
// with the same (case-insensitive) name.
func RegisterUDO(impl *UDOImpl) {
	udoMu.Lock()
	defer udoMu.Unlock()
	udoRegistry[strings.ToLower(impl.Name)] = impl
}

// LookupUDO finds a registered implementation.
func LookupUDO(name string) (*UDOImpl, bool) {
	udoMu.RLock()
	defer udoMu.RUnlock()
	impl, ok := udoRegistry[strings.ToLower(name)]
	return impl, ok
}

func init() {
	// NormalizeStrings lower-cases every string column: a typical cleansing
	// UDO in cooking pipelines.
	RegisterUDO(&UDOImpl{
		Name:          "NormalizeStrings",
		Deterministic: true,
		OutSchema:     func(in data.Schema) data.Schema { return in.Clone() },
		Apply: func(in data.Row, emit func(data.Row), _ *EvalContext) {
			out := in.Clone()
			for i, v := range out {
				if v.Kind == data.KindString {
					out[i] = data.String_(strings.ToLower(v.S))
				}
			}
			emit(out)
		},
	})

	// DropEmpty filters out rows whose first string column is empty —
	// a validity scrubber.
	RegisterUDO(&UDOImpl{
		Name:          "DropEmpty",
		Deterministic: true,
		OutSchema:     func(in data.Schema) data.Schema { return in.Clone() },
		Apply: func(in data.Row, emit func(data.Row), _ *EvalContext) {
			for _, v := range in {
				if v.Kind == data.KindString {
					if v.S == "" {
						return
					}
					break
				}
			}
			emit(in)
		},
	})

	// AddRowTag appends a deterministic hash column, as enrichment UDOs do.
	RegisterUDO(&UDOImpl{
		Name:          "AddRowTag",
		Deterministic: true,
		OutSchema: func(in data.Schema) data.Schema {
			out := in.Clone()
			return append(out, data.Column{Name: "row_tag", Kind: data.KindInt})
		},
		Apply: func(in data.Row, emit func(data.Row), _ *EvalContext) {
			var h uint64 = 1469598103934665603
			for _, v := range in {
				for _, c := range []byte(v.String()) {
					h = (h ^ uint64(c)) * 1099511628211
				}
			}
			out := in.Clone()
			out = append(out, data.Int(int64(h&0x7fffffffffffffff)))
			emit(out)
		},
	})

	// StampIngestTime appends the current time — non-deterministic BY DESIGN,
	// the paper's DateTime.Now example. Reuse must skip plans containing it.
	RegisterUDO(&UDOImpl{
		Name:          "StampIngestTime",
		Deterministic: false,
		OutSchema: func(in data.Schema) data.Schema {
			out := in.Clone()
			return append(out, data.Column{Name: "ingest_time", Kind: data.KindTime})
		},
		Apply: func(in data.Row, emit func(data.Row), ctx *EvalContext) {
			out := in.Clone()
			out = append(out, data.Value{Kind: data.KindTime, I: ctx.NowNanos})
			emit(out)
		},
	})
}
