package plan_test

import (
	"strings"
	"testing"

	"cloudviews/internal/data"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/plan"
	"cloudviews/internal/sqlparser"
)

func mustBind(t *testing.T, src string, params map[string]data.Value) plan.Node {
	t.Helper()
	cat, err := fixtures.Retail(fixtures.DefaultRetail())
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	b := &plan.Binder{Catalog: cat, Params: params}
	n, err := b.BindQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBindScanSchema(t *testing.T) {
	n := mustBind(t, `SELECT * FROM Customer`, nil)
	scan, ok := n.(*plan.Scan)
	if !ok {
		t.Fatalf("got %T, want *Scan (pure star adds no Project)", n)
	}
	if scan.Dataset != "Customer" || len(scan.Schema()) != 3 {
		t.Errorf("bad scan: %s %v", scan.Dataset, scan.Schema())
	}
	if scan.BaseRows != 200 {
		t.Errorf("BaseRows = %d, want 200", scan.BaseRows)
	}
}

func TestBindFilterProject(t *testing.T) {
	n := mustBind(t, `SELECT Name AS n FROM Customer WHERE MktSegment = 'Asia'`, nil)
	proj, ok := n.(*plan.Project)
	if !ok {
		t.Fatalf("root = %T, want Project", n)
	}
	if proj.Names[0] != "n" {
		t.Errorf("name = %q", proj.Names[0])
	}
	if _, ok := proj.Child.(*plan.Filter); !ok {
		t.Fatalf("child = %T, want Filter", proj.Child)
	}
}

func TestBindJoinEquiKeyExtraction(t *testing.T) {
	n := mustBind(t, `SELECT Price FROM Sales JOIN Customer ON Sales.CustomerId = Customer.Id WHERE MktSegment = 'Asia'`, nil)
	var join *plan.Join
	plan.Walk(n, func(m plan.Node) {
		if j, ok := m.(*plan.Join); ok {
			join = j
		}
	})
	if join == nil {
		t.Fatal("no join found")
	}
	if len(join.LeftKeys) != 1 || len(join.RightKeys) != 1 {
		t.Fatalf("keys = %d/%d, want 1/1", len(join.LeftKeys), len(join.RightKeys))
	}
	if join.Residual != nil {
		t.Errorf("unexpected residual %s", join.Residual.Canonical())
	}
	// Right key must be rebased to right child's local schema (Customer.Id = index 0).
	rk, ok := join.RightKeys[0].(*plan.ColRef)
	if !ok || rk.Index != 0 {
		t.Errorf("right key = %#v, want ColRef index 0", join.RightKeys[0])
	}
}

func TestBindJoinReversedCondition(t *testing.T) {
	// Customer.Id on the LEFT of '=' should still be classified correctly.
	n := mustBind(t, `SELECT Price FROM Sales JOIN Customer ON Customer.Id = Sales.CustomerId`, nil)
	var join *plan.Join
	plan.Walk(n, func(m plan.Node) {
		if j, ok := m.(*plan.Join); ok {
			join = j
		}
	})
	if join == nil || len(join.LeftKeys) != 1 {
		t.Fatal("equi key not extracted from reversed condition")
	}
	lk := join.LeftKeys[0].(*plan.ColRef)
	if lk.Name != "CustomerId" {
		t.Errorf("left key = %s, want CustomerId", lk.Name)
	}
}

func TestBindResidualJoin(t *testing.T) {
	n := mustBind(t, `SELECT Price FROM Sales JOIN Customer ON Sales.CustomerId = Customer.Id AND Sales.Quantity > 2`, nil)
	var join *plan.Join
	plan.Walk(n, func(m plan.Node) {
		if j, ok := m.(*plan.Join); ok {
			join = j
		}
	})
	if join == nil || join.Residual == nil {
		t.Fatal("expected residual predicate")
	}
	if len(join.LeftKeys) != 1 {
		t.Errorf("keys = %d", len(join.LeftKeys))
	}
}

func TestBindGroupBy(t *testing.T) {
	n := mustBind(t, `SELECT MktSegment, COUNT(*) AS n, AVG(Price) AS p
		FROM Sales JOIN Customer ON Sales.CustomerId = Customer.Id
		GROUP BY MktSegment`, nil)
	var agg *plan.Aggregate
	plan.Walk(n, func(m plan.Node) {
		if a, ok := m.(*plan.Aggregate); ok {
			agg = a
		}
	})
	if agg == nil {
		t.Fatal("no aggregate")
	}
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Fatalf("groups=%d aggs=%d", len(agg.GroupBy), len(agg.Aggs))
	}
	if agg.Aggs[0].Kind != plan.AggCount || agg.Aggs[0].Arg != nil {
		t.Errorf("first agg should be COUNT(*): %+v", agg.Aggs[0])
	}
	schema := n.Schema()
	if schema[0].Name != "MktSegment" || schema[1].Name != "n" || schema[2].Name != "p" {
		t.Errorf("schema = %v", schema)
	}
}

func TestBindSelectOrderReordersAggregate(t *testing.T) {
	n := mustBind(t, `SELECT COUNT(*) AS n, MktSegment FROM Customer GROUP BY MktSegment`, nil)
	schema := n.Schema()
	if schema[0].Name != "n" || schema[1].Name != "MktSegment" {
		t.Errorf("schema = %v; want aggregate first per select order", schema)
	}
	if _, ok := n.(*plan.Project); !ok {
		t.Errorf("expected reordering Project, got %T", n)
	}
}

func TestBindHaving(t *testing.T) {
	n := mustBind(t, `SELECT MktSegment, COUNT(*) AS n FROM Customer GROUP BY MktSegment HAVING n > 10`, nil)
	if _, ok := n.(*plan.Filter); !ok {
		t.Fatalf("root = %T, want Filter (HAVING)", n)
	}
}

func TestBindParams(t *testing.T) {
	params := map[string]data.Value{"seg": data.String_("Asia")}
	n := mustBind(t, `SELECT Name FROM Customer WHERE MktSegment = @seg`, params)
	found := false
	plan.Walk(n, func(m plan.Node) {
		if f, ok := m.(*plan.Filter); ok {
			f.Pred.Walk(func(e plan.Expr) {
				if p, ok := e.(*plan.Param); ok && p.Name == "seg" && p.Val.S == "Asia" {
					found = true
				}
			})
		}
	})
	if !found {
		t.Error("bound param not found in predicate")
	}
}

func TestBindErrors(t *testing.T) {
	cat, _ := fixtures.Retail(fixtures.DefaultRetail())
	cases := []struct {
		src  string
		want string
	}{
		{`SELECT Nope FROM Customer`, "unknown column"},
		{`SELECT Name FROM NoSuchTable`, "unknown dataset"},
		{`SELECT Name FROM Customer WHERE MktSegment = @missing`, "unbound parameter"},
		{`SELECT PartId FROM Sales JOIN Parts ON Sales.PartId = Parts.PartId`, "ambiguous"},
		{`SELECT Name, COUNT(*) AS n FROM Customer GROUP BY MktSegment`, "neither aggregated nor in GROUP BY"},
		{`SELECT FROBNICATE(Name) FROM Customer`, "unknown function"},
		{`SELECT SUM(Price) / COUNT(*) FROM Sales GROUP BY PartId`, "not supported"},
		{`PROCESS Customer USING "NoSuchUdo"`, "unknown UDO"},
		{`SELECT * FROM Customer UNION ALL SELECT * FROM Sales`, "schema mismatch"},
		{`SELECT *, Name FROM Customer GROUP BY Name`, "cannot be combined"},
	}
	for _, c := range cases {
		q, err := sqlparser.ParseQuery(c.src)
		if err != nil {
			t.Errorf("parse %q: %v", c.src, err)
			continue
		}
		b := &plan.Binder{Catalog: cat}
		if _, err := b.BindQuery(q); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("bind %q: err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestBindScriptSharedIntermediate(t *testing.T) {
	cat, _ := fixtures.Retail(fixtures.DefaultRetail())
	script, err := sqlparser.Parse(`
		asia = SELECT * FROM Customer WHERE MktSegment = 'Asia';
		a = SELECT COUNT(*) AS n FROM asia GROUP BY MktSegment;
		b = SELECT Name FROM asia;
		OUTPUT a TO "out/a";
		OUTPUT b TO "out/b";
	`)
	if err != nil {
		t.Fatal(err)
	}
	b := &plan.Binder{Catalog: cat}
	outs, err := b.BindScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outputs = %d", len(outs))
	}
	// Each reference receives its own deep copy of the intermediate.
	countFilters := func(n plan.Node) int {
		c := 0
		plan.Walk(n, func(m plan.Node) {
			if _, ok := m.(*plan.Filter); ok {
				c++
			}
		})
		return c
	}
	if countFilters(outs[0]) != 1 || countFilters(outs[1]) != 1 {
		t.Error("each output should contain the shared filter subtree")
	}
}

func TestBindUDO(t *testing.T) {
	n := mustBind(t, `PROCESS Customer USING "AddRowTag" DEPENDS "libgeo"`, nil)
	udo, ok := n.(*plan.UDO)
	if !ok {
		t.Fatalf("got %T", n)
	}
	schema := udo.Schema()
	if schema[len(schema)-1].Name != "row_tag" {
		t.Errorf("schema = %v, want trailing row_tag", schema)
	}
}

func TestBindDistinct(t *testing.T) {
	n := mustBind(t, `SELECT DISTINCT MktSegment FROM Customer`, nil)
	agg, ok := n.(*plan.Aggregate)
	if !ok {
		t.Fatalf("got %T, want Aggregate for DISTINCT", n)
	}
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 0 {
		t.Errorf("groups=%d aggs=%d", len(agg.GroupBy), len(agg.Aggs))
	}
}

func TestBindSubqueryAliasResolution(t *testing.T) {
	n := mustBind(t, `SELECT s.total FROM (SELECT CustomerId, SUM(Quantity) AS total FROM Sales GROUP BY CustomerId) AS s WHERE s.total > 5`, nil)
	if n == nil {
		t.Fatal("nil plan")
	}
	schema := n.Schema()
	if len(schema) != 1 || schema[0].Name != "total" {
		t.Errorf("schema = %v", schema)
	}
}

func TestCloneNodeIndependence(t *testing.T) {
	n := mustBind(t, `SELECT Name FROM Customer WHERE MktSegment = 'Asia'`, nil)
	c := plan.CloneNode(n)
	if c == n {
		t.Fatal("clone returned same root pointer")
	}
	if plan.Format(c) != plan.Format(n) {
		t.Error("clone must render identically")
	}
}
