package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Ledger is the synchronization point between the concurrent data plane and
// the deterministic discrete-event scheduler. Worker goroutines finish jobs
// in arbitrary order and post their stage specs with Complete; the scheduler
// later drains the batch. Drain returns specs in canonical (Submit, ID)
// order, so the schedule produced from a ledger is byte-identical no matter
// which interleaving the workers happened to run in.
//
// Jobs that fail and are retried post one completion per attempt, and under
// concurrency the attempts can arrive out of order. The ledger keeps only the
// highest attempt per job ID: a newer attempt supersedes the recorded spec in
// place, a straggling completion for an already-superseded attempt is
// silently dropped (its work must not double-count), and two completions for
// the same attempt remain a loud error.
type Ledger struct {
	mu    sync.Mutex
	specs []JobSpec
	// index locates a job's undrained spec in specs; attempt remembers the
	// highest attempt recorded per ID (including drained batches); drained
	// marks IDs whose spec already left via Drain, for which any further
	// completion is an error (the schedule has been simulated).
	index   map[string]int
	attempt map[string]int
	drained map[string]bool
}

// NewLedger creates an empty completion ledger.
func NewLedger() *Ledger {
	return &Ledger{
		index:   make(map[string]int),
		attempt: make(map[string]int),
		drained: make(map[string]bool),
	}
}

// attemptOf normalizes the 1-based attempt number (0 means 1).
func attemptOf(spec *JobSpec) int {
	if spec.Attempt < 1 {
		return 1
	}
	return spec.Attempt
}

// Complete records one finished job attempt. Safe for concurrent use; events
// may arrive in any order, including a retry's completion before the failed
// attempt's straggler.
func (l *Ledger) Complete(spec JobSpec) error {
	if spec.ID == "" {
		return fmt.Errorf("cluster: completion event with empty job ID")
	}
	a := attemptOf(&spec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.drained[spec.ID] {
		return fmt.Errorf("cluster: completion event for job %s after its batch was drained", spec.ID)
	}
	prev, known := l.attempt[spec.ID]
	switch {
	case !known:
		l.attempt[spec.ID] = a
		l.index[spec.ID] = len(l.specs)
		l.specs = append(l.specs, spec)
	case a > prev:
		// Newer attempt supersedes in place: exactly one spec per job ID ever
		// reaches the scheduler, so a retried job's work counts once.
		l.attempt[spec.ID] = a
		l.specs[l.index[spec.ID]] = spec
	case a < prev:
		// Straggler from a superseded attempt — drop it silently.
	default:
		return fmt.Errorf("cluster: duplicate completion event for job %s attempt %d", spec.ID, a)
	}
	return nil
}

// Pending returns the number of undrained completion events.
func (l *Ledger) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.specs)
}

// Drain removes and returns all recorded events in canonical (Submit, ID)
// order. The ledger is reusable afterwards; IDs from earlier batches remain
// blocked so a straggling completion — any attempt — still fails loudly.
func (l *Ledger) Drain() []JobSpec {
	l.mu.Lock()
	out := l.specs
	l.specs = nil
	for id := range l.index {
		l.drained[id] = true
		delete(l.index, id)
	}
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Submit.Equal(out[j].Submit) {
			return out[i].Submit.Before(out[j].Submit)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RunLedger drains the ledger and simulates the batch. Because Drain
// canonicalizes order, the outcomes are independent of the order in which
// workers posted their completions.
func (s *Simulator) RunLedger(l *Ledger) ([]Outcome, error) {
	return s.Run(l.Drain())
}
