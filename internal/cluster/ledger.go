package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Ledger is the synchronization point between the concurrent data plane and
// the deterministic discrete-event scheduler. Worker goroutines finish jobs
// in arbitrary order and post their stage specs with Complete; the scheduler
// later drains the batch. Drain returns specs in canonical (Submit, ID)
// order, so the schedule produced from a ledger is byte-identical no matter
// which interleaving the workers happened to run in.
type Ledger struct {
	mu    sync.Mutex
	specs []JobSpec
	seen  map[string]bool
}

// NewLedger creates an empty completion ledger.
func NewLedger() *Ledger {
	return &Ledger{seen: make(map[string]bool)}
}

// Complete records one finished job. Safe for concurrent use; events may
// arrive in any order. Posting the same job ID twice is an error (it would
// double-count the job's work in the schedule).
func (l *Ledger) Complete(spec JobSpec) error {
	if spec.ID == "" {
		return fmt.Errorf("cluster: completion event with empty job ID")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seen[spec.ID] {
		return fmt.Errorf("cluster: duplicate completion event for job %s", spec.ID)
	}
	l.seen[spec.ID] = true
	l.specs = append(l.specs, spec)
	return nil
}

// Pending returns the number of undrained completion events.
func (l *Ledger) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.specs)
}

// Drain removes and returns all recorded events in canonical (Submit, ID)
// order. The ledger is reusable afterwards; IDs from earlier batches remain
// blocked so a straggling duplicate still fails loudly.
func (l *Ledger) Drain() []JobSpec {
	l.mu.Lock()
	out := l.specs
	l.specs = nil
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Submit.Equal(out[j].Submit) {
			return out[i].Submit.Before(out[j].Submit)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RunLedger drains the ledger and simulates the batch. Because Drain
// canonicalizes order, the outcomes are independent of the order in which
// workers posted their completions.
func (s *Simulator) RunLedger(l *Ledger) ([]Outcome, error) {
	return s.Run(l.Drain())
}
