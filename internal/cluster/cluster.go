// Package cluster is a discrete-event simulator of a Cosmos-like analytics
// cluster: virtual clusters (VCs) with guaranteed container tokens, FIFO job
// queues per VC, stage-DAG execution, and Apollo-style opportunistic ("bonus")
// allocation of idle capacity. It produces exactly the quantities the paper's
// production evaluation reports per job: queue wait, latency (critical path),
// total processing time, bonus processing time, containers used, and the
// queue length observed at submission.
package cluster

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"cloudviews/internal/fault"
	"cloudviews/internal/obs"
)

// StageSpec describes one schedulable stage of a job.
type StageSpec struct {
	// Work is the stage's total compute in container-seconds.
	Work float64
	// Width is the planned container parallelism (from the optimizer).
	Width int
	// Deps are indexes of stages that must finish first.
	Deps []int
	// IsSpool marks view-materialization stages: their work is real but they
	// are off the critical path (early sealing releases consumers as soon as
	// the stage itself finishes).
	IsSpool bool
}

// JobSpec is a job submitted to the simulator.
type JobSpec struct {
	ID      string
	VC      string
	Submit  time.Time
	Stages  []StageSpec
	Compile time.Duration // compile latency incl. insights round trips
	// Attempt is the job-level retry attempt (1-based; 0 is treated as 1).
	// It keys stage-fault decisions so a retried job re-rolls its faults.
	Attempt int
	// OnStart is invoked (if set) when the job is admitted, with the
	// simulated start time — the engine uses it to seal views early.
	OnStart func(start time.Time)

	queueLenAtSubmit int
}

// Outcome is the per-job result.
type Outcome struct {
	ID              string
	VC              string
	Submit          time.Time
	Start           time.Time
	End             time.Time
	QueueWait       time.Duration
	Latency         time.Duration // End - Submit (incl. queueing + compile)
	QueueLenAtStart int           // jobs ahead in the VC queue at submission
	Processing      float64       // container-seconds, all stages
	Bonus           float64       // container-seconds on opportunistic containers
	Containers      int           // container instances launched
	TokensHeld      int
	// StageRetries counts failed stage attempts that were retried.
	StageRetries int
	// BonusPreemptions counts stages whose bonus containers were preempted
	// mid-stage and whose lost work re-ran on guaranteed tokens.
	BonusPreemptions int
	// FaultDelay is the critical-path time added by stage retries, backoff,
	// and preemption recovery — the job's latency minus what the same
	// schedule would have cost fault-free.
	FaultDelay time.Duration

	// bonusPeak is the peak bonus-container concurrency, held against
	// cluster capacity for the job's duration.
	bonusPeak int
}

// VCConfig sizes one virtual cluster.
type VCConfig struct {
	Name string
	// Tokens is the guaranteed container allocation.
	Tokens int
}

// Config sizes the cluster.
type Config struct {
	// Capacity is the total container count; idle capacity beyond the sum of
	// running jobs' tokens is handed out as bonus.
	Capacity int
	VCs      []VCConfig
	// StageStartup is the fixed per-stage scheduling overhead.
	StageStartup time.Duration
}

// Simulator executes a batch of jobs and returns their outcomes.
type Simulator struct {
	cfg      Config
	vcTokens map[string]int

	// faults, when non-nil, injects stage failures and bonus preemptions;
	// fcfg carries the retry policy. The nil case runs the exact fault-free
	// schedule (identical arithmetic, identical order).
	faults *fault.Injector
	fcfg   fault.Config

	// metrics, when wired via SetMetrics; nil-safe no-ops otherwise.
	registry     *obs.Registry
	mGuaranteed  *obs.Counter
	mBonus       *obs.Counter
	hQueueLen    *obs.Histogram
	mStageRetry  *obs.Counter
	mPreemptions *obs.Counter
}

// SetMetrics registers the simulator's scheduling metrics with a registry.
// Call before the first Run.
func (s *Simulator) SetMetrics(r *obs.Registry) {
	s.registry = r
	s.mGuaranteed = r.Counter("cloudviews_cluster_guaranteed_seconds_total")
	s.mBonus = r.Counter("cloudviews_cluster_bonus_seconds_total")
	s.hQueueLen = r.Histogram("cloudviews_cluster_queue_length", []float64{0, 1, 2, 4, 8, 16, 32, 64})
	s.faultMetrics()
}

// SetFaults wires a fault injector and its retry policy. A nil injector
// keeps the fault-free fast path. Call before the first Run; SetMetrics and
// SetFaults may be called in either order.
func (s *Simulator) SetFaults(inj *fault.Injector, cfg fault.Config) {
	s.faults = inj
	s.fcfg = cfg.WithDefaults()
	s.faultMetrics()
}

// faultMetrics creates the retry/preemption counter families, but only once
// both a registry and an injector exist — fault-free runs must export exactly
// the seed metric set.
func (s *Simulator) faultMetrics() {
	if s.registry == nil || s.faults == nil {
		return
	}
	s.mStageRetry = s.registry.Counter("cloudviews_stage_retries_total")
	s.mPreemptions = s.registry.Counter("cloudviews_bonus_preemptions_total")
}

// New creates a simulator. Unknown VCs referenced by jobs get a default token
// allocation of 50.
func New(cfg Config) *Simulator {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1000
	}
	if cfg.StageStartup <= 0 {
		cfg.StageStartup = 500 * time.Millisecond
	}
	s := &Simulator{cfg: cfg, vcTokens: make(map[string]int)}
	for _, vc := range cfg.VCs {
		s.vcTokens[vc.Name] = vc.Tokens
	}
	return s
}

func (s *Simulator) tokensFor(vc string) int {
	if t, ok := s.vcTokens[vc]; ok && t > 0 {
		return t
	}
	return 50
}

// event is a simulator event.
type event struct {
	at   time.Time
	seq  int // tiebreaker for determinism
	kind int // 0 = arrival, 1 = completion
	job  *runningJob
	spec *JobSpec
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	if q[i].kind != q[j].kind {
		return q[i].kind > q[j].kind // completions before arrivals at same instant
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

type runningJob struct {
	spec    *JobSpec
	tokens  int
	outcome Outcome
}

type vcState struct {
	freeTokens int
	queue      []*JobSpec
	running    int
}

// Run simulates all jobs and returns outcomes sorted by submission time.
func (s *Simulator) Run(jobs []JobSpec) ([]Outcome, error) {
	for i := range jobs {
		if len(jobs[i].Stages) == 0 {
			return nil, fmt.Errorf("cluster: job %s has no stages", jobs[i].ID)
		}
	}
	// Stable order for determinism.
	sorted := make([]*JobSpec, len(jobs))
	for i := range jobs {
		sorted[i] = &jobs[i]
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		if !sorted[i].Submit.Equal(sorted[j].Submit) {
			return sorted[i].Submit.Before(sorted[j].Submit)
		}
		return sorted[i].ID < sorted[j].ID
	})

	vcs := make(map[string]*vcState)
	vcOf := func(name string) *vcState {
		st, ok := vcs[name]
		if !ok {
			st = &vcState{freeTokens: s.tokensFor(name)}
			vcs[name] = st
		}
		return st
	}

	clusterInUse := 0
	var outcomes []Outcome
	var q eventQueue
	seq := 0
	push := func(e *event) {
		e.seq = seq
		seq++
		heap.Push(&q, e)
	}
	for _, spec := range sorted {
		push(&event{at: spec.Submit, kind: 0, spec: spec})
	}

	// admit starts the job at the head of a VC queue if tokens allow.
	admit := func(vc *vcState, now time.Time) {
		for len(vc.queue) > 0 {
			head := vc.queue[0]
			need := s.jobTokens(head)
			if need > vc.freeTokens {
				return
			}
			vc.queue = vc.queue[1:]
			vc.running++
			vc.freeTokens -= need
			clusterInUse += need

			bonusAvail := s.cfg.Capacity - clusterInUse
			if bonusAvail < 0 {
				bonusAvail = 0
			}
			rj := &runningJob{spec: head, tokens: need}
			if s.faults != nil {
				rj.outcome = s.executeFaulted(head, now, need, bonusAvail)
			} else {
				rj.outcome = s.execute(head, now, need, bonusAvail)
			}
			clusterInUse += rj.outcome.bonusPeak
			if head.OnStart != nil {
				head.OnStart(now.Add(head.Compile))
			}
			push(&event{at: rj.outcome.End, kind: 1, job: rj})
		}
	}

	for q.Len() > 0 {
		e := heap.Pop(&q).(*event)
		switch e.kind {
		case 0: // arrival
			vc := vcOf(e.spec.VC)
			// Queue length the job observes: jobs waiting ahead of it, plus
			// itself if it cannot start immediately.
			ahead := len(vc.queue)
			vc.queue = append(vc.queue, e.spec)
			admit(vc, e.at)
			stillWaiting := false
			for _, q := range vc.queue {
				if q == e.spec {
					stillWaiting = true
					break
				}
			}
			e.spec.queueLenAtSubmit = ahead
			if stillWaiting {
				e.spec.queueLenAtSubmit = ahead + 1
			}
		case 1: // completion
			vc := vcOf(e.job.spec.VC)
			vc.running--
			vc.freeTokens += e.job.tokens
			clusterInUse -= e.job.tokens + e.job.outcome.bonusPeak
			outcomes = append(outcomes, e.job.outcome)
			admit(vc, e.at)
		}
	}

	sort.Slice(outcomes, func(i, j int) bool {
		if !outcomes[i].Submit.Equal(outcomes[j].Submit) {
			return outcomes[i].Submit.Before(outcomes[j].Submit)
		}
		return outcomes[i].ID < outcomes[j].ID
	})
	for _, o := range outcomes {
		s.mGuaranteed.Add(o.Processing - o.Bonus)
		s.mBonus.Add(o.Bonus)
		s.hQueueLen.Observe(float64(o.QueueLenAtStart))
		if o.StageRetries > 0 {
			s.mStageRetry.Add(float64(o.StageRetries))
		}
		if o.BonusPreemptions > 0 {
			s.mPreemptions.Add(float64(o.BonusPreemptions))
		}
	}
	return outcomes, nil
}

// jobTokens decides the guaranteed tokens a job holds: its peak stage width,
// capped by the VC allocation.
func (s *Simulator) jobTokens(spec *JobSpec) int {
	peak := 1
	for _, st := range spec.Stages {
		if st.Width > peak {
			peak = st.Width
		}
	}
	if limit := s.tokensFor(spec.VC); peak > limit {
		peak = limit
	}
	return peak
}

// execute computes the job's schedule: per-stage durations under the token
// and bonus allocation, the critical path (ignoring spool side branches), and
// the processing/bonus/container totals.
func (s *Simulator) execute(spec *JobSpec, now time.Time, tokens, bonusAvail int) Outcome {
	start := now.Add(spec.Compile)
	n := len(spec.Stages)
	finish := make([]time.Duration, n) // finish offset from start
	var processing, bonus float64
	containers := 0
	bonusPeak := 0

	for i, st := range spec.Stages {
		var ready time.Duration
		for _, d := range st.Deps {
			if d >= 0 && d < n && finish[d] > ready {
				ready = finish[d]
			}
		}
		alloc := st.Width
		if alloc < 1 {
			alloc = 1
		}
		b := 0
		if alloc > tokens {
			b = alloc - tokens
			if b > bonusAvail {
				b = bonusAvail
			}
			alloc = tokens + b
		}
		if b > bonusPeak {
			bonusPeak = b
		}
		dur := time.Duration(st.Work/float64(alloc)*float64(time.Second)) + s.cfg.StageStartup
		finish[i] = ready + dur
		processing += st.Work
		if alloc > 0 {
			bonus += st.Work * float64(b) / float64(alloc)
		}
		// Container instances launched follow the PLANNED width: in Cosmos,
		// over-partitioned stages instantiate their containers (possibly
		// sequentially over waves); the simulator's token clamp only models
		// how fast they run.
		w := st.Width
		if w < 1 {
			w = 1
		}
		containers += w
	}

	// Critical path: the finish time of the last non-spool stage (spool
	// writes overlap with the rest of the query and are sealed early).
	var critical time.Duration
	for i, st := range spec.Stages {
		if st.IsSpool {
			continue
		}
		if finish[i] > critical {
			critical = finish[i]
		}
	}
	end := start.Add(critical)

	return Outcome{
		ID:              spec.ID,
		VC:              spec.VC,
		Submit:          spec.Submit,
		Start:           start,
		End:             end,
		QueueWait:       start.Sub(spec.Submit) - spec.Compile,
		Latency:         end.Sub(spec.Submit),
		QueueLenAtStart: spec.queueLenAtSubmit,
		Processing:      processing,
		Bonus:           bonus,
		Containers:      containers,
		TokensHeld:      tokens,
		bonusPeak:       bonusPeak,
	}
}

// stageKey builds the deterministic decision key for one stage attempt. It
// includes the job-level attempt so a retried (recompiled) job re-rolls its
// stage faults rather than hitting the identical schedule again.
func stageKey(spec *JobSpec, stage, attempt int) string {
	ja := spec.Attempt
	if ja < 1 {
		ja = 1
	}
	return fmt.Sprintf("%s/j%d/s%02d/a%d", spec.ID, ja, stage, attempt)
}

// executeFaulted is execute with stage failures and bonus preemptions woven
// in. Failure model per stage:
//
//   - Stage failure: the attempt runs to its halfway point, the container is
//     lost, and the scheduler retries after capped exponential backoff. The
//     half attempt's work is charged (resources were really consumed). At
//     most MaxStageAttempts per stage and StageRetryBudget retries per job;
//     past either bound the attempt is never failed (the job manager has
//     escalated to reliable resources), so stages always complete.
//   - Bonus preemption: at the stage's halfway point the opportunistic
//     containers are reclaimed; the work they contributed to the first half
//     is discarded and re-run, together with the second half, on guaranteed
//     tokens only. Lost work is charged as both processing and bonus.
//
// A fault-free stage computes the exact same duration expression as execute,
// so a zero-rate injector reproduces the fault-free schedule bit for bit.
func (s *Simulator) executeFaulted(spec *JobSpec, now time.Time, tokens, bonusAvail int) Outcome {
	start := now.Add(spec.Compile)
	n := len(spec.Stages)
	finish := make([]time.Duration, n)      // finish offset from start
	finishClean := make([]time.Duration, n) // same schedule without faults
	var processing, bonus float64
	containers := 0
	bonusPeak := 0
	stageRetries := 0
	preemptions := 0
	budget := s.fcfg.StageRetryBudget

	for i, st := range spec.Stages {
		var ready, readyClean time.Duration
		for _, d := range st.Deps {
			if d >= 0 && d < n {
				if finish[d] > ready {
					ready = finish[d]
				}
				if finishClean[d] > readyClean {
					readyClean = finishClean[d]
				}
			}
		}
		alloc := st.Width
		if alloc < 1 {
			alloc = 1
		}
		b := 0
		if alloc > tokens {
			b = alloc - tokens
			if b > bonusAvail {
				b = bonusAvail
			}
			alloc = tokens + b
		}
		if b > bonusPeak {
			bonusPeak = b
		}
		w := st.Width
		if w < 1 {
			w = 1
		}

		cleanDur := time.Duration(st.Work/float64(alloc)*float64(time.Second)) + s.cfg.StageStartup
		var stageDur time.Duration
		for attempt := 1; ; attempt++ {
			key := stageKey(spec, i, attempt)
			if attempt < s.fcfg.MaxStageAttempts && budget > 0 &&
				s.faults.Should(fault.StageFail, key) {
				// The attempt dies halfway through: its containers' work so
				// far is wasted but was consumed, and the retry waits out the
				// backoff before relaunching.
				half := time.Duration(st.Work/2/float64(alloc)*float64(time.Second)) + s.cfg.StageStartup
				stageDur += half + s.fcfg.JitteredBackoff(attempt, key)
				processing += st.Work / 2
				bonus += st.Work / 2 * float64(b) / float64(alloc)
				containers += w
				stageRetries++
				budget--
				continue
			}
			if b > 0 && s.faults.Should(fault.BonusPreempt, key) {
				// Preempted at the halfway point: the bonus containers'
				// first-half contribution is lost and re-run, with the second
				// half, on guaranteed tokens alone.
				lost := st.Work / 2 * float64(b) / float64(alloc)
				t1 := time.Duration(st.Work / 2 / float64(alloc) * float64(time.Second))
				t2 := time.Duration((st.Work/2 + lost) / float64(tokens) * float64(time.Second))
				stageDur += t1 + t2 + s.cfg.StageStartup
				processing += st.Work + lost
				bonus += lost
				preemptions++
			} else {
				stageDur += time.Duration(st.Work/float64(alloc)*float64(time.Second)) + s.cfg.StageStartup
				processing += st.Work
				bonus += st.Work * float64(b) / float64(alloc)
			}
			break
		}
		finish[i] = ready + stageDur
		finishClean[i] = readyClean + cleanDur
		containers += w
	}

	var critical, criticalClean time.Duration
	for i, st := range spec.Stages {
		if st.IsSpool {
			continue
		}
		if finish[i] > critical {
			critical = finish[i]
		}
		if finishClean[i] > criticalClean {
			criticalClean = finishClean[i]
		}
	}
	end := start.Add(critical)

	return Outcome{
		ID:               spec.ID,
		VC:               spec.VC,
		Submit:           spec.Submit,
		Start:            start,
		End:              end,
		QueueWait:        start.Sub(spec.Submit) - spec.Compile,
		Latency:          end.Sub(spec.Submit),
		QueueLenAtStart:  spec.queueLenAtSubmit,
		Processing:       processing,
		Bonus:            bonus,
		Containers:       containers,
		TokensHeld:       tokens,
		StageRetries:     stageRetries,
		BonusPreemptions: preemptions,
		FaultDelay:       critical - criticalClean,
		bonusPeak:        bonusPeak,
	}
}
