package cluster_test

import (
	"testing"
	"testing/quick"
	"time"

	"cloudviews/internal/cluster"
)

var t0 = time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)

func simpleJob(id, vc string, submit time.Time, work float64, width int) cluster.JobSpec {
	return cluster.JobSpec{
		ID: id, VC: vc, Submit: submit,
		Stages: []cluster.StageSpec{{Work: work, Width: width}},
	}
}

func TestSingleJob(t *testing.T) {
	sim := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}}})
	out, err := sim.Run([]cluster.JobSpec{simpleJob("j1", "vc1", t0, 100, 10)})
	if err != nil {
		t.Fatal(err)
	}
	o := out[0]
	if o.QueueWait != 0 {
		t.Errorf("queue wait = %v", o.QueueWait)
	}
	// 100 container-seconds over 10 containers ≈ 10s + startup.
	if o.Latency < 10*time.Second || o.Latency > 12*time.Second {
		t.Errorf("latency = %v, want ~10.5s", o.Latency)
	}
	if o.Processing != 100 {
		t.Errorf("processing = %g", o.Processing)
	}
	if o.Containers != 10 {
		t.Errorf("containers = %d", o.Containers)
	}
	if o.Bonus != 0 {
		t.Errorf("bonus = %g, want 0 (width within tokens)", o.Bonus)
	}
}

func TestQueueingFIFO(t *testing.T) {
	sim := cluster.New(cluster.Config{Capacity: 10, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}}})
	jobs := []cluster.JobSpec{
		simpleJob("j1", "vc1", t0, 100, 10),
		simpleJob("j2", "vc1", t0.Add(time.Second), 100, 10),
		simpleJob("j3", "vc1", t0.Add(2*time.Second), 100, 10),
	}
	out, err := sim.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].QueueWait <= 0 || out[2].QueueWait <= out[1].QueueWait {
		t.Errorf("queue waits should grow: %v %v %v", out[0].QueueWait, out[1].QueueWait, out[2].QueueWait)
	}
	if out[0].QueueLenAtStart != 0 || out[1].QueueLenAtStart != 1 || out[2].QueueLenAtStart != 2 {
		t.Errorf("queue lengths = %d %d %d", out[0].QueueLenAtStart, out[1].QueueLenAtStart, out[2].QueueLenAtStart)
	}
	if !out[1].Start.After(out[0].End.Add(-time.Millisecond)) {
		t.Error("j2 must start after j1 completes (tokens exhausted)")
	}
}

func TestVCIsolation(t *testing.T) {
	sim := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{
		{Name: "vc1", Tokens: 10}, {Name: "vc2", Tokens: 10},
	}})
	jobs := []cluster.JobSpec{
		simpleJob("j1", "vc1", t0, 1000, 10),
		simpleJob("j2", "vc2", t0.Add(time.Second), 10, 10),
	}
	out, err := sim.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].QueueWait != 0 {
		t.Errorf("vc2 job must not queue behind vc1: %v", out[1].QueueWait)
	}
}

func TestBonusAllocation(t *testing.T) {
	// Width 50 but only 10 guaranteed tokens; idle capacity provides bonus.
	sim := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}}})
	out, err := sim.Run([]cluster.JobSpec{simpleJob("j1", "vc1", t0, 500, 50)})
	if err != nil {
		t.Fatal(err)
	}
	o := out[0]
	if o.Bonus <= 0 {
		t.Fatal("expected bonus processing")
	}
	// 40 of 50 containers are bonus → 80% of work.
	if o.Bonus < 350 || o.Bonus > 450 {
		t.Errorf("bonus = %g, want ~400", o.Bonus)
	}
	if o.Containers != 50 {
		t.Errorf("containers = %d", o.Containers)
	}
}

func TestBonusLimitedByCapacity(t *testing.T) {
	// Busy cluster: no idle capacity, so the wide stage runs on tokens only.
	sim := cluster.New(cluster.Config{Capacity: 10, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}}})
	out, err := sim.Run([]cluster.JobSpec{simpleJob("j1", "vc1", t0, 500, 50)})
	if err != nil {
		t.Fatal(err)
	}
	o := out[0]
	if o.Bonus != 0 {
		t.Errorf("bonus = %g, want 0 on a full cluster", o.Bonus)
	}
	// 500 work over 10 containers = 50s.
	if o.Latency < 50*time.Second {
		t.Errorf("latency = %v, want >= 50s", o.Latency)
	}
}

func TestStageDAGCriticalPath(t *testing.T) {
	sim := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}},
		StageStartup: time.Millisecond})
	// Two independent 10s stages feeding a 10s stage: critical path ~20s,
	// not 30s.
	job := cluster.JobSpec{
		ID: "j1", VC: "vc1", Submit: t0,
		Stages: []cluster.StageSpec{
			{Work: 100, Width: 10},
			{Work: 100, Width: 10},
			{Work: 100, Width: 10, Deps: []int{0, 1}},
		},
	}
	out, err := sim.Run([]cluster.JobSpec{job})
	if err != nil {
		t.Fatal(err)
	}
	lat := out[0].Latency
	if lat < 19*time.Second || lat > 22*time.Second {
		t.Errorf("latency = %v, want ~20s (parallel branches)", lat)
	}
	if out[0].Processing != 300 {
		t.Errorf("processing = %g, want 300", out[0].Processing)
	}
}

func TestSpoolOffCriticalPath(t *testing.T) {
	sim := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}},
		StageStartup: time.Millisecond})
	base := cluster.JobSpec{
		ID: "base", VC: "vc1", Submit: t0,
		Stages: []cluster.StageSpec{
			{Work: 100, Width: 10},
			{Work: 100, Width: 10, Deps: []int{0}},
		},
	}
	withSpool := cluster.JobSpec{
		ID: "spool", VC: "vc1", Submit: t0,
		Stages: []cluster.StageSpec{
			{Work: 100, Width: 10},
			{Work: 100, Width: 10, Deps: []int{0}},
			{Work: 500, Width: 10, Deps: []int{0}, IsSpool: true}, // big view write
		},
	}
	o1, err := sim.Run([]cluster.JobSpec{base})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := sim.Run([]cluster.JobSpec{withSpool})
	if err != nil {
		t.Fatal(err)
	}
	if o2[0].Latency != o1[0].Latency {
		t.Errorf("spool stage must not extend the critical path: %v vs %v", o2[0].Latency, o1[0].Latency)
	}
	if o2[0].Processing <= o1[0].Processing {
		t.Error("spool work must still be charged to processing time")
	}
}

func TestCompileLatencyCharged(t *testing.T) {
	sim := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}}})
	j := simpleJob("j1", "vc1", t0, 10, 1)
	j.Compile = 2 * time.Second
	out, err := sim.Run([]cluster.JobSpec{j})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Latency < 12*time.Second {
		t.Errorf("latency = %v, want >= 12s (compile + run)", out[0].Latency)
	}
}

func TestOnStartCallback(t *testing.T) {
	sim := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}}})
	var started time.Time
	j := simpleJob("j1", "vc1", t0, 10, 1)
	j.OnStart = func(s time.Time) { started = s }
	if _, err := sim.Run([]cluster.JobSpec{j}); err != nil {
		t.Fatal(err)
	}
	if !started.Equal(t0) {
		t.Errorf("OnStart = %v, want %v", started, t0)
	}
}

func TestEmptyStagesRejected(t *testing.T) {
	sim := cluster.New(cluster.Config{})
	if _, err := sim.Run([]cluster.JobSpec{{ID: "bad", VC: "v", Submit: t0}}); err == nil {
		t.Error("expected error for job without stages")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []cluster.JobSpec {
		var jobs []cluster.JobSpec
		for i := 0; i < 50; i++ {
			jobs = append(jobs, simpleJob(
				string(rune('a'+i%26))+string(rune('0'+i/26)), "vc1",
				t0.Add(time.Duration(i%7)*time.Second), float64(10+i), 5))
		}
		return jobs
	}
	sim := cluster.New(cluster.Config{Capacity: 20, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 15}}})
	o1, err := sim.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	o2, err := sim.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d differs between identical runs", i)
		}
	}
}

// Conservation: total processing equals the sum of submitted work.
func TestWorkConservation(t *testing.T) {
	sim := cluster.New(cluster.Config{Capacity: 30, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}, {Name: "vc2", Tokens: 10}}})
	var jobs []cluster.JobSpec
	var want float64
	for i := 0; i < 20; i++ {
		vc := "vc1"
		if i%2 == 0 {
			vc = "vc2"
		}
		w := float64(10 * (i + 1))
		want += w
		jobs = append(jobs, simpleJob(string(rune('a'+i)), vc, t0.Add(time.Duration(i)*time.Second), w, 8))
	}
	out, err := sim.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for _, o := range out {
		got += o.Processing
		if o.Bonus > o.Processing {
			t.Errorf("job %s bonus %g exceeds processing %g", o.ID, o.Bonus, o.Processing)
		}
	}
	if got != want {
		t.Errorf("processing sum = %g, want %g", got, want)
	}
	if len(out) != len(jobs) {
		t.Errorf("outcomes = %d, want %d", len(out), len(jobs))
	}
}

// Property: for random job mixes, processing is conserved, bonus never
// exceeds processing, and every job eventually completes with End >= Start.
func TestRandomizedInvariants(t *testing.T) {
	f := func(seed uint16) bool {
		rng := uint64(seed)*2654435761 + 1
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		sim := cluster.New(cluster.Config{
			Capacity: 20 + next(100),
			VCs: []cluster.VCConfig{
				{Name: "a", Tokens: 5 + next(20)},
				{Name: "b", Tokens: 5 + next(20)},
			},
		})
		var jobs []cluster.JobSpec
		var want float64
		n := 5 + next(30)
		for i := 0; i < n; i++ {
			vc := "a"
			if next(2) == 1 {
				vc = "b"
			}
			stages := 1 + next(3)
			spec := cluster.JobSpec{
				ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), VC: vc,
				Submit: t0.Add(time.Duration(next(3600)) * time.Second),
			}
			for s := 0; s < stages; s++ {
				w := float64(1 + next(200))
				want += w
				st := cluster.StageSpec{Work: w, Width: 1 + next(60)}
				if s > 0 {
					st.Deps = []int{s - 1}
				}
				spec.Stages = append(spec.Stages, st)
			}
			jobs = append(jobs, spec)
		}
		out, err := sim.Run(jobs)
		if err != nil || len(out) != n {
			return false
		}
		var got float64
		for _, o := range out {
			got += o.Processing
			if o.Bonus > o.Processing+1e-9 {
				return false
			}
			if o.End.Before(o.Start) || o.Start.Before(o.Submit) {
				return false
			}
			if o.QueueWait < 0 {
				return false
			}
		}
		return got > want-1e-6 && got < want+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
