package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func ledgerSpecs(n int) []JobSpec {
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = JobSpec{
			ID:     fmt.Sprintf("job-%03d", i),
			VC:     fmt.Sprintf("vc%d", i%4),
			Submit: t0.Add(time.Duration(i%17) * time.Second),
			Stages: []StageSpec{
				{Work: float64(1+i%5) * 10, Width: 1 + i%8},
				{Work: 5, Width: 2, Deps: []int{0}},
			},
			Compile: 100 * time.Millisecond,
		}
	}
	return specs
}

// TestLedgerOutOfOrderDeterministic posts completion events from many
// goroutines in scrambled order and checks the resulting schedule is
// identical to submitting the same batch serially in order.
func TestLedgerOutOfOrderDeterministic(t *testing.T) {
	specs := ledgerSpecs(60)
	sim := New(Config{Capacity: 200, VCs: []VCConfig{
		{Name: "vc0", Tokens: 20}, {Name: "vc1", Tokens: 20},
		{Name: "vc2", Tokens: 20}, {Name: "vc3", Tokens: 20},
	}})

	serial, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}

	led := NewLedger()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker posts a strided slice, so arrival order at the
			// ledger is an arbitrary interleaving.
			for i := w; i < len(specs); i += 8 {
				if err := led.Complete(specs[len(specs)-1-i]); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if led.Pending() != len(specs) {
		t.Fatalf("pending = %d, want %d", led.Pending(), len(specs))
	}

	concurrent, err := sim.RunLedger(led)
	if err != nil {
		t.Fatal(err)
	}
	if len(concurrent) != len(serial) {
		t.Fatalf("outcome count %d vs %d", len(concurrent), len(serial))
	}
	for i := range serial {
		if serial[i] != concurrent[i] {
			t.Errorf("outcome %d diverges:\n serial:     %+v\n concurrent: %+v", i, serial[i], concurrent[i])
		}
	}
	if led.Pending() != 0 {
		t.Errorf("ledger not drained: %d left", led.Pending())
	}
}

func TestLedgerRejectsDuplicates(t *testing.T) {
	led := NewLedger()
	spec := ledgerSpecs(1)[0]
	if err := led.Complete(spec); err != nil {
		t.Fatal(err)
	}
	if err := led.Complete(spec); err == nil {
		t.Error("duplicate completion must be rejected")
	}
	led.Drain()
	// IDs stay blocked across batches.
	if err := led.Complete(spec); err == nil {
		t.Error("duplicate across drained batches must be rejected")
	}
	if err := led.Complete(JobSpec{}); err == nil {
		t.Error("empty job ID must be rejected")
	}
}

// TestLedgerRetrySupersedes covers out-of-order completions from failed and
// retried jobs: only the highest attempt's spec may reach the scheduler, no
// matter the arrival order, so a superseded attempt never double-counts
// processing or bonus seconds.
func TestLedgerRetrySupersedes(t *testing.T) {
	base := ledgerSpecs(1)[0]
	a1, a2, a3 := base, base, base
	a1.Attempt = 1
	a2.Attempt = 2
	a2.Stages = []StageSpec{{Work: 40, Width: 2}} // retried plan differs
	a3.Attempt = 3
	a3.Stages = []StageSpec{{Work: 60, Width: 2}}

	orders := [][]JobSpec{
		{a1, a2, a3}, // in order
		{a3, a1, a2}, // retry lands first, stragglers after
		{a2, a3, a1},
	}
	for oi, order := range orders {
		led := NewLedger()
		for _, spec := range order {
			if err := led.Complete(spec); err != nil {
				t.Fatalf("order %d: %v", oi, err)
			}
		}
		if led.Pending() != 1 {
			t.Fatalf("order %d: pending = %d, want 1 (one spec per job)", oi, led.Pending())
		}
		got := led.Drain()
		if len(got) != 1 || got[0].Attempt != 3 || got[0].Stages[0].Work != 60 {
			t.Fatalf("order %d: drained %+v, want attempt 3", oi, got)
		}
	}
}

func TestLedgerRetryWorkCountsOnce(t *testing.T) {
	// Simulate the drained batch and check the superseded attempt's work is
	// absent from the schedule totals.
	base := ledgerSpecs(1)[0]
	a1, a2 := base, base
	a1.Attempt = 1
	a1.Stages = []StageSpec{{Work: 1000, Width: 1}}
	a2.Attempt = 2
	a2.Stages = []StageSpec{{Work: 30, Width: 1}}

	led := NewLedger()
	if err := led.Complete(a2); err != nil { // retry arrives first
		t.Fatal(err)
	}
	if err := led.Complete(a1); err != nil { // straggler dropped silently
		t.Fatal(err)
	}
	sim := New(Config{Capacity: 100, VCs: []VCConfig{{Name: base.VC, Tokens: 10}}})
	outcomes, err := sim.RunLedger(led)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 1 {
		t.Fatalf("outcomes = %d, want 1", len(outcomes))
	}
	if outcomes[0].Processing != 30 {
		t.Fatalf("processing = %g, want 30 (superseded attempt must not count)", outcomes[0].Processing)
	}
}

func TestLedgerRetryDuplicateAndPostDrain(t *testing.T) {
	base := ledgerSpecs(1)[0]
	a2 := base
	a2.Attempt = 2
	led := NewLedger()
	if err := led.Complete(a2); err != nil {
		t.Fatal(err)
	}
	if err := led.Complete(a2); err == nil {
		t.Error("same attempt posted twice must be rejected")
	}
	led.Drain()
	a3 := base
	a3.Attempt = 3
	if err := led.Complete(a3); err == nil {
		t.Error("completion after the job's batch drained must be rejected")
	}
}
