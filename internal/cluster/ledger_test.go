package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func ledgerSpecs(n int) []JobSpec {
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = JobSpec{
			ID:     fmt.Sprintf("job-%03d", i),
			VC:     fmt.Sprintf("vc%d", i%4),
			Submit: t0.Add(time.Duration(i%17) * time.Second),
			Stages: []StageSpec{
				{Work: float64(1+i%5) * 10, Width: 1 + i%8},
				{Work: 5, Width: 2, Deps: []int{0}},
			},
			Compile: 100 * time.Millisecond,
		}
	}
	return specs
}

// TestLedgerOutOfOrderDeterministic posts completion events from many
// goroutines in scrambled order and checks the resulting schedule is
// identical to submitting the same batch serially in order.
func TestLedgerOutOfOrderDeterministic(t *testing.T) {
	specs := ledgerSpecs(60)
	sim := New(Config{Capacity: 200, VCs: []VCConfig{
		{Name: "vc0", Tokens: 20}, {Name: "vc1", Tokens: 20},
		{Name: "vc2", Tokens: 20}, {Name: "vc3", Tokens: 20},
	}})

	serial, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}

	led := NewLedger()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker posts a strided slice, so arrival order at the
			// ledger is an arbitrary interleaving.
			for i := w; i < len(specs); i += 8 {
				if err := led.Complete(specs[len(specs)-1-i]); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if led.Pending() != len(specs) {
		t.Fatalf("pending = %d, want %d", led.Pending(), len(specs))
	}

	concurrent, err := sim.RunLedger(led)
	if err != nil {
		t.Fatal(err)
	}
	if len(concurrent) != len(serial) {
		t.Fatalf("outcome count %d vs %d", len(concurrent), len(serial))
	}
	for i := range serial {
		if serial[i] != concurrent[i] {
			t.Errorf("outcome %d diverges:\n serial:     %+v\n concurrent: %+v", i, serial[i], concurrent[i])
		}
	}
	if led.Pending() != 0 {
		t.Errorf("ledger not drained: %d left", led.Pending())
	}
}

func TestLedgerRejectsDuplicates(t *testing.T) {
	led := NewLedger()
	spec := ledgerSpecs(1)[0]
	if err := led.Complete(spec); err != nil {
		t.Fatal(err)
	}
	if err := led.Complete(spec); err == nil {
		t.Error("duplicate completion must be rejected")
	}
	led.Drain()
	// IDs stay blocked across batches.
	if err := led.Complete(spec); err == nil {
		t.Error("duplicate across drained batches must be rejected")
	}
	if err := led.Complete(JobSpec{}); err == nil {
		t.Error("empty job ID must be rejected")
	}
}
