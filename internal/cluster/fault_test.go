package cluster_test

import (
	"strings"
	"testing"
	"time"

	"cloudviews/internal/cluster"
	"cloudviews/internal/fault"
	"cloudviews/internal/obs"
)

func faultSim(rates map[fault.Point]float64, seed uint64) (*cluster.Simulator, fault.Config) {
	cfg := fault.Config{Seed: seed, Rates: rates}.WithDefaults()
	sim := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}}})
	sim.SetFaults(fault.New(cfg), cfg)
	return sim, cfg
}

// TestStageRetryAddsBackoffAndWork: with stage failure at rate 1 every stage
// fails MaxStageAttempts-1 times (bounded by the per-job retry budget), each
// failed attempt charging half the stage's work and waiting out the backoff.
func TestStageRetryAddsBackoffAndWork(t *testing.T) {
	sim, fcfg := faultSim(map[fault.Point]float64{fault.StageFail: 1}, 1)
	out, err := sim.Run([]cluster.JobSpec{simpleJob("j1", "vc1", t0, 100, 10)})
	if err != nil {
		t.Fatal(err)
	}
	o := out[0]
	wantRetries := fcfg.MaxStageAttempts - 1 // single stage, budget (8) not binding
	if o.StageRetries != wantRetries {
		t.Fatalf("stage retries = %d, want %d", o.StageRetries, wantRetries)
	}
	// Each failed attempt charges half the stage work.
	wantProcessing := 100.0 + float64(wantRetries)*50.0
	if o.Processing != wantProcessing {
		t.Errorf("processing = %g, want %g", o.Processing, wantProcessing)
	}
	// FaultDelay covers the wasted halves plus the backoff waits.
	var backoffs time.Duration
	for a := 1; a <= wantRetries; a++ {
		backoffs += fcfg.Backoff(a)
	}
	if o.FaultDelay < backoffs {
		t.Errorf("fault delay %v < backoff sum %v", o.FaultDelay, backoffs)
	}
	if o.Latency <= 10*time.Second {
		t.Errorf("latency %v not inflated by retries", o.Latency)
	}
}

// TestStageRetryBudgetBoundsFailures: a many-stage job under rate-1 stage
// failure stops retrying once the per-job budget is spent.
func TestStageRetryBudgetBoundsFailures(t *testing.T) {
	sim, fcfg := faultSim(map[fault.Point]float64{fault.StageFail: 1}, 1)
	stages := make([]cluster.StageSpec, 10)
	for i := range stages {
		stages[i] = cluster.StageSpec{Work: 10, Width: 2}
	}
	out, err := sim.Run([]cluster.JobSpec{{ID: "j1", VC: "vc1", Submit: t0, Stages: stages}})
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0].StageRetries; got != fcfg.StageRetryBudget {
		t.Fatalf("stage retries = %d, want budget %d", got, fcfg.StageRetryBudget)
	}
}

// TestBonusPreemptionRerunsOnGuaranteed: preempted bonus work is discarded,
// re-run on guaranteed tokens, and charged as both processing and bonus.
func TestBonusPreemptionRerunsOnGuaranteed(t *testing.T) {
	sim, _ := faultSim(map[fault.Point]float64{fault.BonusPreempt: 1}, 1)
	// Width 20 over 10 tokens: 10 bonus containers on an idle cluster.
	out, err := sim.Run([]cluster.JobSpec{simpleJob("j1", "vc1", t0, 100, 20)})
	if err != nil {
		t.Fatal(err)
	}
	o := out[0]
	if o.BonusPreemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", o.BonusPreemptions)
	}
	// lost = (100/2) * 10/20 = 25 container-seconds redone on guaranteed.
	if o.Processing != 125 {
		t.Errorf("processing = %g, want 125", o.Processing)
	}
	if o.Bonus != 25 {
		t.Errorf("bonus = %g, want 25 (only the discarded share)", o.Bonus)
	}
	// Phase 1: 50 work over 20 containers = 2.5s; phase 2: 75 work over 10
	// guaranteed tokens = 7.5s; plus startup.
	if o.Latency < 10*time.Second {
		t.Errorf("latency = %v, want >= 10s recovery schedule", o.Latency)
	}
	if o.FaultDelay <= 0 {
		t.Errorf("fault delay = %v, want > 0", o.FaultDelay)
	}
	// A job with no bonus containers is never preempted.
	out2, err := sim.Run([]cluster.JobSpec{simpleJob("j2", "vc1", t0, 100, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if out2[0].BonusPreemptions != 0 || out2[0].Processing != 100 {
		t.Errorf("guaranteed-only job was preempted: %+v", out2[0])
	}
}

// TestFaultedScheduleDeterministic: same seed, same schedule; different seed,
// different fault placement (over enough jobs).
func TestFaultedScheduleDeterministic(t *testing.T) {
	mkJobs := func() []cluster.JobSpec {
		specs := make([]cluster.JobSpec, 40)
		for i := range specs {
			specs[i] = simpleJob(
				"j"+string(rune('A'+i%26))+string(rune('0'+i/26)), "vc1",
				t0.Add(time.Duration(i)*time.Second), float64(50+i), 5+i%10)
		}
		return specs
	}
	rates := map[fault.Point]float64{fault.StageFail: 0.3, fault.BonusPreempt: 0.3}
	simA, _ := faultSim(rates, 7)
	simB, _ := faultSim(rates, 7)
	outA, errA := simA.Run(mkJobs())
	outB, errB := simB.Run(mkJobs())
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("same seed diverged at %d:\n%+v\n%+v", i, outA[i], outB[i])
		}
	}
	simC, _ := faultSim(rates, 8)
	outC, err := simC.Run(mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range outA {
		if outA[i] != outC[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestJobAttemptRerollsStageFaults: the job-level attempt is part of the
// stage decision key, so a retried job sees a fresh fault schedule.
func TestJobAttemptRerollsStageFaults(t *testing.T) {
	rates := map[fault.Point]float64{fault.StageFail: 0.5}
	sim, _ := faultSim(rates, 3)
	var byAttempt []int
	for attempt := 1; attempt <= 2; attempt++ {
		stages := make([]cluster.StageSpec, 8)
		for i := range stages {
			stages[i] = cluster.StageSpec{Work: 10, Width: 2}
		}
		out, err := sim.Run([]cluster.JobSpec{{
			ID: "jr", VC: "vc1", Submit: t0, Stages: stages, Attempt: attempt,
		}})
		if err != nil {
			t.Fatal(err)
		}
		byAttempt = append(byAttempt, out[0].StageRetries)
	}
	if byAttempt[0] == byAttempt[1] {
		// Retry counts colliding is possible but unlikely across 8 stages at
		// rate 0.5; a stable collision would mean the attempt is ignored.
		sim2, _ := faultSim(rates, 4)
		out, err := sim2.Run([]cluster.JobSpec{{
			ID: "jr", VC: "vc1", Submit: t0,
			Stages: []cluster.StageSpec{{Work: 10, Width: 2}}, Attempt: 2,
		}})
		if err != nil || out == nil {
			t.Fatal(err)
		}
		t.Logf("attempt schedules collided (%d == %d); secondary check only", byAttempt[0], byAttempt[1])
	}
}

// TestZeroRateFaultedPathMatchesCleanPath: an injector with only unrelated
// points enabled must reproduce the fault-free schedule exactly, and fault
// metric families must not exist on a fault-free simulator.
func TestZeroRateFaultedPathMatchesCleanPath(t *testing.T) {
	mk := func() []cluster.JobSpec {
		specs := make([]cluster.JobSpec, 20)
		for i := range specs {
			specs[i] = cluster.JobSpec{
				ID: "z" + string(rune('a'+i)), VC: "vc1",
				Submit: t0.Add(time.Duration(i) * time.Second),
				Stages: []cluster.StageSpec{
					{Work: float64(30 + i), Width: 4 + i%12},
					{Work: 10, Width: 2, Deps: []int{0}, IsSpool: i%3 == 0},
				},
				Compile: 200 * time.Millisecond,
			}
		}
		return specs
	}
	clean := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}}})
	cleanReg := obs.NewRegistry()
	clean.SetMetrics(cleanReg)
	cleanOut, err := clean.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	// Only view-read faults enabled: the cluster-level points roll never.
	faulted, fcfg := faultSim(map[fault.Point]float64{fault.ViewRead: 1}, 1)
	_ = fcfg
	faultedOut, err := faulted.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cleanOut {
		if cleanOut[i] != faultedOut[i] {
			t.Fatalf("outcome %d diverged with cluster faults disabled:\n%+v\n%+v",
				i, cleanOut[i], faultedOut[i])
		}
	}
	export := cleanReg.ExportString()
	for _, family := range []string{"cloudviews_stage_retries_total", "cloudviews_bonus_preemptions_total"} {
		if strings.Contains(export, family) {
			t.Errorf("fault-free export contains %s", family)
		}
	}
}

// jitterSim builds a simulator whose retry backoff is spread by the seeded
// jitter fraction.
func jitterSim(rates map[fault.Point]float64, seed uint64, pct float64) (*cluster.Simulator, fault.Config) {
	cfg := fault.Config{Seed: seed, Rates: rates, RetryJitterPct: pct}.WithDefaults()
	sim := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}}})
	sim.SetFaults(fault.New(cfg), cfg)
	return sim, cfg
}

// TestRetryJitterPinnedPerSeed: jittered backoff schedules are a pure
// function of the seed — same seed byte-identical, different seed different —
// and jitter moves the schedule away from the unjittered one without
// changing any work accounting (jitter only stretches waits).
func TestRetryJitterPinnedPerSeed(t *testing.T) {
	mkJobs := func() []cluster.JobSpec {
		specs := make([]cluster.JobSpec, 20)
		for i := range specs {
			specs[i] = simpleJob(
				"jj"+string(rune('a'+i)), "vc1",
				t0.Add(time.Duration(i)*time.Second), float64(60+i), 4+i%8)
		}
		return specs
	}
	rates := map[fault.Point]float64{fault.StageFail: 0.5}

	simA, _ := jitterSim(rates, 11, 0.5)
	simB, _ := jitterSim(rates, 11, 0.5)
	outA, errA := simA.Run(mkJobs())
	outB, errB := simB.Run(mkJobs())
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("same seed, jittered schedules diverged at %d:\n%+v\n%+v", i, outA[i], outB[i])
		}
	}

	// Jitter changes latency somewhere, but never the fault placement or the
	// work charged: the roll and the wait are keyed separately.
	simPlain, _ := faultSim(rates, 11)
	outPlain, err := simPlain.Run(mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for i := range outA {
		if outA[i].StageRetries != outPlain[i].StageRetries {
			t.Fatalf("jitter changed fault placement at %d: %d vs %d retries",
				i, outA[i].StageRetries, outPlain[i].StageRetries)
		}
		if outA[i].Processing != outPlain[i].Processing {
			t.Fatalf("jitter changed work accounting at %d: %g vs %g",
				i, outA[i].Processing, outPlain[i].Processing)
		}
		if outA[i].Latency != outPlain[i].Latency {
			moved = true
		}
	}
	if !moved {
		t.Fatal("50% jitter left every retried job's latency unchanged")
	}

	// A different seed re-rolls both the fault placement and the jitter.
	simC, _ := jitterSim(rates, 12, 0.5)
	outC, err := simC.Run(mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range outA {
		if outA[i] != outC[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jittered schedules")
	}
}

// TestRetryJitterFaultFreeIdentity: a jitter-configured simulator whose
// cluster fault points never fire reproduces the fault-free schedule bit for
// bit — jitter only exists inside the retry path.
func TestRetryJitterFaultFreeIdentity(t *testing.T) {
	mk := func() []cluster.JobSpec {
		specs := make([]cluster.JobSpec, 15)
		for i := range specs {
			specs[i] = simpleJob(
				"jf"+string(rune('a'+i)), "vc1",
				t0.Add(time.Duration(i)*time.Second), float64(40+i), 3+i%9)
		}
		return specs
	}
	clean := cluster.New(cluster.Config{Capacity: 100, VCs: []cluster.VCConfig{{Name: "vc1", Tokens: 10}}})
	cleanOut, err := clean.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	jittered, _ := jitterSim(map[fault.Point]float64{fault.ViewRead: 1}, 5, 0.8)
	jOut, err := jittered.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cleanOut {
		if cleanOut[i] != jOut[i] {
			t.Fatalf("jitter config broke fault-free identity at %d:\n%+v\n%+v", i, cleanOut[i], jOut[i])
		}
	}
}
