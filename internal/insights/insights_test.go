package insights_test

import (
	"strings"
	"testing"
	"time"

	"cloudviews/internal/insights"
	"cloudviews/internal/signature"
)

func TestMultiLevelControls(t *testing.T) {
	s := insights.NewService()
	if s.Enabled("c1", "vc1", true) {
		t.Error("cluster/vc must default to disabled")
	}
	s.SetClusterEnabled("c1", true)
	if s.Enabled("c1", "vc1", true) {
		t.Error("vc still disabled")
	}
	s.SetVCEnabled("vc1", true)
	if !s.Enabled("c1", "vc1", true) {
		t.Error("all levels on should enable")
	}
	if s.Enabled("c1", "vc1", false) {
		t.Error("job-level opt-out must win")
	}
	s.SetServiceEnabled(false)
	if s.Enabled("c1", "vc1", true) {
		t.Error("service-level kill switch must win")
	}
}

func TestAnnotationServingAndCache(t *testing.T) {
	s := insights.NewService()
	tag := signature.Tag("tag-x")
	s.PublishAnnotations(tag, []insights.Annotation{
		{Recurring: "r1", Utility: 10},
		{Recurring: "r2", Utility: 99},
	})
	anns, lat := s.FetchAnnotations(tag)
	if len(anns) != 2 {
		t.Fatalf("anns = %d", len(anns))
	}
	if anns[0].Recurring != "r2" {
		t.Error("annotations must be utility-ranked")
	}
	if lat != insights.RoundTripLatency {
		t.Errorf("cold fetch latency = %v", lat)
	}
	_, lat2 := s.FetchAnnotations(tag)
	if lat2 >= lat {
		t.Errorf("warm fetch should be faster: %v vs %v", lat2, lat)
	}
	// Republish invalidates the cache.
	s.PublishAnnotations(tag, nil)
	_, lat3 := s.FetchAnnotations(tag)
	if lat3 != insights.RoundTripLatency {
		t.Error("republish must invalidate the serving cache")
	}
	u := s.UsageSnapshot()
	if u.Fetches != 3 || u.CacheHits != 1 {
		t.Errorf("usage = %+v", u)
	}
}

func TestFetchUnknownTag(t *testing.T) {
	s := insights.NewService()
	anns, lat := s.FetchAnnotations("tag-none")
	if len(anns) != 0 || lat <= 0 {
		t.Errorf("anns=%d lat=%v", len(anns), lat)
	}
}

func TestViewLocks(t *testing.T) {
	s := insights.NewService()
	if !s.AcquireViewLock("sig1", "jobA") {
		t.Fatal("first acquire must succeed")
	}
	if !s.AcquireViewLock("sig1", "jobA") {
		t.Error("reacquire by holder must succeed")
	}
	if s.AcquireViewLock("sig1", "jobB") {
		t.Error("second job must not acquire")
	}
	if s.ReleaseViewLock("sig1", "jobB") {
		t.Error("non-holder release must fail")
	}
	if !s.ReleaseViewLock("sig1", "jobA") {
		t.Error("holder release must succeed")
	}
	if !s.AcquireViewLock("sig1", "jobB") {
		t.Error("after release, lock must be free")
	}
	if h, ok := s.LockHolder("sig1"); !ok || h != "jobB" {
		t.Errorf("holder = %q %v", h, ok)
	}
}

func TestAnnotationsFileRoundTrip(t *testing.T) {
	s := insights.NewService()
	tag := signature.Tag("tag-debug")
	s.PublishAnnotations(tag, []insights.Annotation{
		{Recurring: "r1", VC: "vc9", ExpectedRows: 100, ExpectedBytes: 4096, ExpectedWork: 1.5, Utility: 7},
	})
	blob, err := s.ExportAnnotationsFile(tag)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(blob, "tag-debug") || !strings.Contains(blob, "vc9") {
		t.Errorf("blob missing fields:\n%s", blob)
	}

	s2 := insights.NewService()
	gotTag, err := s2.ImportAnnotationsFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	if gotTag != tag {
		t.Errorf("tag = %s", gotTag)
	}
	anns, _ := s2.FetchAnnotations(tag)
	if len(anns) != 1 || anns[0].ExpectedBytes != 4096 {
		t.Errorf("roundtrip anns = %+v", anns)
	}
	if _, err := s.ExportAnnotationsFile("tag-missing"); err == nil {
		t.Error("export of unknown tag must fail")
	}
	if _, err := s2.ImportAnnotationsFile("{bad json"); err == nil {
		t.Error("import of bad file must fail")
	}
}

func TestClearAnnotations(t *testing.T) {
	s := insights.NewService()
	s.PublishAnnotations("t1", []insights.Annotation{{Recurring: "r"}})
	s.ClearAnnotations()
	if s.TagCount() != 0 {
		t.Error("clear must drop all tags")
	}
}

func TestUsageCounters(t *testing.T) {
	s := insights.NewService()
	s.NoteViewCreated()
	s.NoteViewReused()
	s.NoteViewReused()
	u := s.UsageSnapshot()
	if u.ViewsCreated != 1 || u.ViewsReused != 2 {
		t.Errorf("usage = %+v", u)
	}
}

func TestRoundTripLatencyConstant(t *testing.T) {
	if insights.RoundTripLatency != 15*time.Millisecond {
		t.Errorf("paper reports ~15ms round trips; constant = %v", insights.RoundTripLatency)
	}
}

func TestReplaceAllAnnotationsDropsStaleTags(t *testing.T) {
	s := insights.NewService()
	s.PublishAnnotations("tag-old", []insights.Annotation{{Recurring: "r1", Utility: 5}})
	s.PublishAnnotations("tag-kept", []insights.Annotation{{Recurring: "r2", Utility: 1}})
	s.ReplaceAllAnnotations(map[signature.Tag][]insights.Annotation{
		"tag-kept": {{Recurring: "r2b", Utility: 3}, {Recurring: "r2a", Utility: 9}},
		"tag-new":  {{Recurring: "r3", Utility: 2}},
	})
	if s.TagCount() != 2 {
		t.Errorf("tags = %d, want 2", s.TagCount())
	}
	if anns, _ := s.FetchAnnotations("tag-old"); len(anns) != 0 {
		t.Error("stale tag must be dropped (just-in-time property)")
	}
	anns, _ := s.FetchAnnotations("tag-kept")
	if len(anns) != 2 || anns[0].Recurring != "r2a" {
		t.Errorf("replaced annotations not utility-ranked: %+v", anns)
	}
}

// TestAnnotationOrderDeterministicUnderTies is the regression test for the
// nondeterministic ranking bug: equal-utility annotations were ordered by a
// non-stable sort on Utility alone, so a per-job view cap could pick
// different views run to run. Publishing the same tied set in 100 different
// input permutations must always serve one canonical order.
func TestAnnotationOrderDeterministicUnderTies(t *testing.T) {
	tied := []insights.Annotation{
		{Recurring: "rec-d", VC: "vc2", Utility: 5},
		{Recurring: "rec-b", VC: "vc1", Utility: 5},
		{Recurring: "rec-a", VC: "vc2", Utility: 5},
		{Recurring: "rec-c", VC: "vc1", Utility: 9},
		{Recurring: "rec-a", VC: "vc1", Utility: 5},
	}
	var want []insights.Annotation
	for trial := 0; trial < 100; trial++ {
		// Deterministic pseudo-shuffle: a different rotation + swap pattern
		// per trial, covering many input permutations without math/rand.
		in := append([]insights.Annotation(nil), tied...)
		rot := trial % len(in)
		in = append(in[rot:], in[:rot]...)
		if trial%2 == 1 {
			in[0], in[len(in)-1] = in[len(in)-1], in[0]
		}

		s := insights.NewService()
		s.PublishAnnotations("tag1", in)
		got, _ := s.FetchAnnotations("tag1")
		if trial == 0 {
			want = got
			if want[0].Recurring != "rec-c" {
				t.Fatalf("highest utility must rank first, got %+v", want[0])
			}
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: position %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}

	// ReplaceAllAnnotations must rank identically to PublishAnnotations.
	s := insights.NewService()
	s.ReplaceAllAnnotations(map[signature.Tag][]insights.Annotation{"tag1": tied})
	got, _ := s.FetchAnnotations("tag1")
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReplaceAllAnnotations order diverges at %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
