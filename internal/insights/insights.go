// Package insights implements the CloudViews insights service: the
// operational component that serves view-selection output (annotations) to
// the compiler, indexed by job tags; hands out exclusive view-creation locks
// so exactly one job materializes each view; and exposes the multi-level
// enable/disable controls (job, virtual cluster, cluster, service) that §4 of
// the paper describes. In production this is an Azure-SQL-backed service with
// a cached serving layer and ~15 ms round trips; here it is in-process with
// the same protocol and a simulated latency the cluster model charges to
// compile time.
package insights

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudviews/internal/obs"
	"cloudviews/internal/signature"
)

// RoundTripLatency is the simulated serving-layer round trip charged to job
// compilation ("an end to round trip latency of around 15 milliseconds").
const RoundTripLatency = 15 * time.Millisecond

// Annotation tells the compiler that a recurring subexpression was selected
// for materialization and reuse, together with the expected statistics from
// workload analysis (used to cost the rewritten plan).
type Annotation struct {
	Recurring     signature.Sig `json:"recurring"`
	VC            string        `json:"vc"`
	ExpectedRows  int64         `json:"expectedRows"`
	ExpectedBytes int64         `json:"expectedBytes"`
	ExpectedWork  float64       `json:"expectedWork"`
	// Utility is the estimated total-compute saving used for ranking when a
	// per-job view cap applies.
	Utility float64 `json:"utility"`
}

// Service is the thread-safe insights service.
type Service struct {
	mu sync.RWMutex

	// annotations by job tag.
	byTag map[signature.Tag][]Annotation
	// cache simulates the cached serving layer: tags fetched at least once
	// are "warm".
	warm map[signature.Tag]bool

	// view-creation locks: strict signature -> holder job id.
	locks map[signature.Sig]string

	// Controls.
	serviceEnabled bool
	clusterEnabled map[string]bool // default false until set
	vcEnabled      map[string]bool

	// usage counters.
	created int64
	reused  int64
	fetches int64
	hits    int64

	// metrics, when wired via SetMetrics; nil-safe no-ops otherwise.
	mFetches    *obs.Counter
	mWarmHits   *obs.Counter
	mContention *obs.Counter
}

// NewService creates an enabled service with no annotations.
func NewService() *Service {
	return &Service{
		byTag:          make(map[signature.Tag][]Annotation),
		warm:           make(map[signature.Tag]bool),
		locks:          make(map[signature.Sig]string),
		serviceEnabled: true,
		clusterEnabled: make(map[string]bool),
		vcEnabled:      make(map[string]bool),
	}
}

// SetMetrics registers the service's counters with a registry. Call before
// serving traffic.
func (s *Service) SetMetrics(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mFetches = r.Counter("cloudviews_insights_fetches_total")
	s.mWarmHits = r.Counter("cloudviews_insights_warm_hits_total")
	s.mContention = r.Counter("cloudviews_insights_lock_contention_total")
}

// ---------------------------------------------------------------------------
// Controls (paper §4, "Multi-level control").

// SetServiceEnabled is the uber control used during customer incidents.
func (s *Service) SetServiceEnabled(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceEnabled = on
}

// SetClusterEnabled toggles an entire cluster.
func (s *Service) SetClusterEnabled(cluster string, on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clusterEnabled[cluster] = on
}

// SetVCEnabled toggles one virtual cluster (the opt-in/opt-out unit).
func (s *Service) SetVCEnabled(vc string, on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vcEnabled[vc] = on
}

// Enabled combines all four levels: service AND cluster AND vc AND job.
func (s *Service) Enabled(cluster, vc string, jobOptIn bool) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.serviceEnabled && s.clusterEnabled[cluster] && s.vcEnabled[vc] && jobOptIn
}

// DisabledReason is the explain-layer view of Enabled: it names the FIRST
// control level that disabled reuse ("service", "cluster", "vc", "job"), in
// the same precedence order Enabled evaluates, or "" when reuse is enabled.
// One lock acquisition answers both questions, so the compile path calls
// this instead of Enabled when it also needs provenance.
func (s *Service) DisabledReason(cluster, vc string, jobOptIn bool) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	switch {
	case !s.serviceEnabled:
		return "service"
	case !s.clusterEnabled[cluster]:
		return "cluster"
	case !s.vcEnabled[vc]:
		return "vc"
	case !jobOptIn:
		return "job"
	}
	return ""
}

// ---------------------------------------------------------------------------
// Annotation serving.

// sortAnnotations ranks annotations for serving: Utility descending, with
// the recurring signature and VC as tiebreakers. The sort must be stable and
// fully ordered — with a bare sort.Slice on Utility, equal-utility
// annotations served in map-iteration order, so a per-job view cap could
// pick different views run to run.
func sortAnnotations(anns []Annotation) []Annotation {
	sorted := append([]Annotation(nil), anns...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Utility != b.Utility {
			return a.Utility > b.Utility
		}
		if a.Recurring != b.Recurring {
			return a.Recurring < b.Recurring
		}
		return a.VC < b.VC
	})
	return sorted
}

// PublishAnnotations replaces the annotations for a tag. Called by the
// periodic workload-analysis job ("these tagged signatures are then polled by
// insights service and stored").
func (s *Service) PublishAnnotations(tag signature.Tag, anns []Annotation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byTag[tag] = sortAnnotations(anns)
	delete(s.warm, tag) // cache invalidated on republish
}

// ClearAnnotations drops everything (e.g., after an engine-version bump
// invalidates all signatures).
func (s *Service) ClearAnnotations() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byTag = make(map[signature.Tag][]Annotation)
	s.warm = make(map[signature.Tag]bool)
}

// ReplaceAllAnnotations atomically swaps in the full output of a workload-
// analysis run. Tags absent from the new output lose their annotations —
// the just-in-time property: a subexpression that stops appearing in the
// analyzed workload stops being selected, and therefore stops being
// materialized.
func (s *Service) ReplaceAllAnnotations(all map[signature.Tag][]Annotation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byTag = make(map[signature.Tag][]Annotation, len(all))
	for tag, anns := range all {
		s.byTag[tag] = sortAnnotations(anns)
	}
	s.warm = make(map[signature.Tag]bool)
}

// FetchAnnotations returns the annotations for a job's tag plus the simulated
// round-trip latency the compiler should charge (zero when the cached serving
// layer is warm).
func (s *Service) FetchAnnotations(tag signature.Tag) ([]Annotation, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fetches++
	s.mFetches.Inc()
	lat := RoundTripLatency
	if s.warm[tag] {
		s.hits++
		s.mWarmHits.Inc()
		lat = time.Millisecond
	} else {
		s.warm[tag] = true
	}
	return append([]Annotation(nil), s.byTag[tag]...), lat
}

// TagCount returns the number of tags with published annotations.
func (s *Service) TagCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byTag)
}

// ExportAnnotationsFile renders the query-annotations debugging file for a
// tag ("in case of a customer incident, we can reproduce the compute reuse
// behavior by compiling a job with the annotations file").
func (s *Service) ExportAnnotationsFile(tag signature.Tag) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	anns, ok := s.byTag[tag]
	if !ok {
		return "", fmt.Errorf("insights: no annotations for tag %s", tag)
	}
	blob, err := json.MarshalIndent(map[string]any{
		"tag":         tag,
		"annotations": anns,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(blob), nil
}

// ImportAnnotationsFile loads a previously exported annotations file.
func (s *Service) ImportAnnotationsFile(blob string) (signature.Tag, error) {
	var decoded struct {
		Tag         signature.Tag `json:"tag"`
		Annotations []Annotation  `json:"annotations"`
	}
	if err := json.Unmarshal([]byte(blob), &decoded); err != nil {
		return "", fmt.Errorf("insights: invalid annotations file: %w", err)
	}
	s.PublishAnnotations(decoded.Tag, decoded.Annotations)
	return decoded.Tag, nil
}

// ---------------------------------------------------------------------------
// View-creation locks.

// AcquireViewLock grants the exclusive right to materialize a view. Only the
// first job touching a selected subexpression builds it; others proceed
// without the spool.
func (s *Service) AcquireViewLock(strict signature.Sig, jobID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if holder, held := s.locks[strict]; held {
		if holder != jobID {
			s.mContention.Inc()
		}
		return holder == jobID
	}
	s.locks[strict] = jobID
	return true
}

// ReleaseViewLock releases a held lock; returns false when jobID is not the
// holder.
func (s *Service) ReleaseViewLock(strict signature.Sig, jobID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.locks[strict] != jobID {
		return false
	}
	delete(s.locks, strict)
	return true
}

// LockHolder reports the current holder, if any.
func (s *Service) LockHolder(strict signature.Sig) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.locks[strict]
	return h, ok
}

// LockCount returns the number of view-creation locks currently held. After
// a workload settles it must be zero: a leftover lock means some failure path
// skipped ReleaseViewLock and wedged the signature for every later producer.
func (s *Service) LockCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.locks)
}

// ---------------------------------------------------------------------------
// Usage metrics.

// NoteViewCreated bumps the created counter.
func (s *Service) NoteViewCreated() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.created++
}

// NoteViewReused bumps the reused counter.
func (s *Service) NoteViewReused() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reused++
}

// Usage summarizes service activity.
type Usage struct {
	ViewsCreated int64
	ViewsReused  int64
	Fetches      int64
	CacheHits    int64
}

// UsageSnapshot returns the counters.
func (s *Service) UsageSnapshot() Usage {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Usage{ViewsCreated: s.created, ViewsReused: s.reused, Fetches: s.fetches, CacheHits: s.hits}
}
