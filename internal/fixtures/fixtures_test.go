package fixtures_test

import (
	"testing"

	"cloudviews/internal/fixtures"
	"cloudviews/internal/plan"
	"cloudviews/internal/sqlparser"
)

func TestRetailDeterministic(t *testing.T) {
	a, err := fixtures.Retail(fixtures.DefaultRetail())
	if err != nil {
		t.Fatal(err)
	}
	b, err := fixtures.Retail(fixtures.DefaultRetail())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Sales", "Customer", "Parts"} {
		va, _ := a.Latest(name)
		vb, _ := b.Latest(name)
		if va.Table.Fingerprint() != vb.Table.Fingerprint() {
			t.Errorf("%s differs between identical seeds", name)
		}
	}
}

func TestRetailSizes(t *testing.T) {
	cfg := fixtures.DefaultRetail()
	cat, err := fixtures.Retail(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]int{"Sales": cfg.Sales, "Customer": cfg.Customers, "Parts": cfg.Parts}
	for name, want := range checks {
		v, err := cat.Latest(name)
		if err != nil {
			t.Fatal(err)
		}
		if v.Table.NumRows() != want {
			t.Errorf("%s rows = %d, want %d", name, v.Table.NumRows(), want)
		}
	}
}

func TestSalesReferentialIntegrity(t *testing.T) {
	cfg := fixtures.DefaultRetail()
	cat, _ := fixtures.Retail(cfg)
	sales, _ := cat.Latest("Sales")
	for _, r := range sales.Table.Rows {
		if cid := r[1].I; cid < 0 || cid >= int64(cfg.Customers) {
			t.Fatalf("dangling CustomerId %d", cid)
		}
		if pid := r[2].I; pid < 0 || pid >= int64(cfg.Parts) {
			t.Fatalf("dangling PartId %d", pid)
		}
		if q := r[4].I; q < 1 || q > 10 {
			t.Fatalf("quantity out of range: %d", q)
		}
	}
}

func TestAppendSalesDay(t *testing.T) {
	cfg := fixtures.DefaultRetail()
	cat, _ := fixtures.Retail(cfg)
	before := cat.VersionCount("Sales")
	g, err := fixtures.AppendSalesDay(cat, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cat.VersionCount("Sales") != before+1 {
		t.Error("no new version")
	}
	latest, _ := cat.Latest("Sales")
	if latest.GUID != g {
		t.Error("latest is not the new day")
	}
	// New day's sale ids continue from day*cfg.Sales.
	if latest.Table.Rows[0][0].I != int64(cfg.Sales) {
		t.Errorf("day-1 first SaleId = %d, want %d", latest.Table.Rows[0][0].I, cfg.Sales)
	}
}

func TestFigure4QueriesBindAndShare(t *testing.T) {
	cat, _ := fixtures.Retail(fixtures.DefaultRetail())
	queries := fixtures.Figure4Queries()
	if len(queries) != 3 {
		t.Fatalf("queries = %d", len(queries))
	}
	var joins []string
	for _, src := range queries {
		script, err := sqlparser.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		b := &plan.Binder{Catalog: cat}
		outs, err := b.BindScript(script)
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		plan.Walk(outs[0], func(n plan.Node) {
			if j, ok := n.(*plan.Join); ok {
				joins = append(joins, j.Attrs(false))
			}
		})
	}
	// The Sales⋈Customer join must appear in all three (the paper's shared
	// subexpression).
	counts := map[string]int{}
	for _, j := range joins {
		counts[j]++
	}
	sharedTriple := false
	for _, c := range counts {
		if c == 3 {
			sharedTriple = true
		}
	}
	if !sharedTriple {
		t.Errorf("no join shared by all three analysts: %v", counts)
	}
}
