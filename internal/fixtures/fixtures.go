// Package fixtures builds small deterministic catalogs used by tests,
// examples, and micro-benchmarks. The retail fixture mirrors the paper's
// Figure 4 scenario: Sales, Customer, and Parts tables analyzed by three
// different users whose queries share the Sales⋈Customer(Asia) subexpression.
package fixtures

import (
	"fmt"
	"time"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
)

// Epoch is the reference start time used across fixtures and experiments:
// Feb 1, 2020 — the first day of the paper's production window.
var Epoch = time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)

// Segments used in the retail fixture.
var Segments = []string{"Asia", "Europe", "America", "Africa", "Oceania"}

// Brands and part types for the Parts table.
var (
	Brands    = []string{"Contoso", "Fabrikam", "Adventure", "Northwind", "Tailspin"}
	PartTypes = []string{"widget", "gadget", "sprocket", "gear", "cog"}
)

// RetailConfig sizes the retail fixture.
type RetailConfig struct {
	Customers int
	Parts     int
	Sales     int
	Seed      uint64
}

// DefaultRetail is a small but non-trivial configuration.
func DefaultRetail() RetailConfig {
	return RetailConfig{Customers: 200, Parts: 50, Sales: 5000, Seed: 42}
}

// Retail builds the Figure 4 catalog with one version of each table and
// returns it. Data is deterministic in the seed.
func Retail(cfg RetailConfig) (*catalog.Catalog, error) {
	cat := catalog.New()
	rng := data.NewRand(cfg.Seed)

	customerSchema := data.Schema{
		{Name: "Id", Kind: data.KindInt},
		{Name: "Name", Kind: data.KindString},
		{Name: "MktSegment", Kind: data.KindString},
	}
	if _, err := cat.Define("Customer", customerSchema); err != nil {
		return nil, err
	}
	customers := data.NewTable(customerSchema)
	for i := 0; i < cfg.Customers; i++ {
		customers.Append(data.Row{
			data.Int(int64(i)),
			data.String_(fmt.Sprintf("customer-%04d", i)),
			data.String_(Segments[rng.Intn(len(Segments))]),
		})
	}
	if _, err := cat.BulkUpdate("Customer", Epoch, customers); err != nil {
		return nil, err
	}

	partSchema := data.Schema{
		{Name: "PartId", Kind: data.KindInt},
		{Name: "Brand", Kind: data.KindString},
		{Name: "PartType", Kind: data.KindString},
	}
	if _, err := cat.Define("Parts", partSchema); err != nil {
		return nil, err
	}
	parts := data.NewTable(partSchema)
	for i := 0; i < cfg.Parts; i++ {
		parts.Append(data.Row{
			data.Int(int64(i)),
			data.String_(Brands[rng.Intn(len(Brands))]),
			data.String_(PartTypes[rng.Intn(len(PartTypes))]),
		})
	}
	if _, err := cat.BulkUpdate("Parts", Epoch, parts); err != nil {
		return nil, err
	}

	salesSchema := data.Schema{
		{Name: "SaleId", Kind: data.KindInt},
		{Name: "CustomerId", Kind: data.KindInt},
		{Name: "PartId", Kind: data.KindInt},
		{Name: "Price", Kind: data.KindFloat},
		{Name: "Quantity", Kind: data.KindInt},
		{Name: "Discount", Kind: data.KindFloat},
		{Name: "SoldAt", Kind: data.KindTime},
	}
	if _, err := cat.Define("Sales", salesSchema); err != nil {
		return nil, err
	}
	sales := salesTable(salesSchema, cfg, rng, 0)
	if _, err := cat.BulkUpdate("Sales", Epoch, sales); err != nil {
		return nil, err
	}
	return cat, nil
}

// AppendSalesDay publishes a fresh Sales version (bulk update) for day d,
// modeling the daily regeneration of shared datasets.
func AppendSalesDay(cat *catalog.Catalog, cfg RetailConfig, day int) (catalog.GUID, error) {
	ds, ok := cat.Dataset("Sales")
	if !ok {
		return "", fmt.Errorf("fixtures: Sales not defined")
	}
	rng := data.NewRand(cfg.Seed + uint64(day)*1315423911)
	table := salesTable(ds.Schema, cfg, rng, day)
	return cat.BulkUpdate("Sales", Epoch.AddDate(0, 0, day), table)
}

func salesTable(schema data.Schema, cfg RetailConfig, rng *data.Rand, day int) *data.Table {
	t := data.NewTable(schema)
	base := Epoch.AddDate(0, 0, day)
	for i := 0; i < cfg.Sales; i++ {
		t.Append(data.Row{
			data.Int(int64(day*cfg.Sales + i)),
			data.Int(int64(rng.Zipf(cfg.Customers, 1.1))),
			data.Int(int64(rng.Intn(cfg.Parts))),
			data.Float(1 + 99*rng.Float64()),
			data.Int(1 + int64(rng.Intn(10))),
			data.Float(rng.Float64() * 0.3),
			data.Time(base.Add(time.Duration(rng.Intn(86400)) * time.Second)),
		})
	}
	return t
}

// Figure4Queries returns the three analyst queries from the paper's Figure 4.
// All three share the Sales ⋈ Customer (Asia) subexpression; the last two
// additionally share its join with Parts.
func Figure4Queries() []string {
	return []string{
		// Average sales per customer in Asia.
		`res = SELECT CustomerId, AVG(Price * Quantity) AS avg_sales
		       FROM Sales JOIN Customer ON Sales.CustomerId = Customer.Id
		       WHERE MktSegment = 'Asia'
		       GROUP BY CustomerId;
		 OUTPUT res TO "out/avg_sales_per_customer";`,
		// Average discount per part brand in Asia.
		`res = SELECT Brand, AVG(Discount) AS avg_discount
		       FROM Sales JOIN Customer ON Sales.CustomerId = Customer.Id
		                  JOIN Parts ON Sales.PartId = Parts.PartId
		       WHERE MktSegment = 'Asia'
		       GROUP BY Brand;
		 OUTPUT res TO "out/avg_discount_per_brand";`,
		// Total quantity sold per part type in Asia.
		`res = SELECT PartType, SUM(Quantity) AS total_qty
		       FROM Sales JOIN Customer ON Sales.CustomerId = Customer.Id
		                  JOIN Parts ON Sales.PartId = Parts.PartId
		       WHERE MktSegment = 'Asia'
		       GROUP BY PartType;
		 OUTPUT res TO "out/total_qty_per_type";`,
	}
}
