package analysis

import "sort"

// localSearchSelect is the flighted treatment policy: a deterministic
// local-search selector in the spirit of "Workload acceleration by optimizing
// materialized view selection using local search" (PAPERS.md). It starts from
// the greedy-knapsack solution, then repeatedly applies the best improving
// move — add an unselected candidate, drop a selected one, or swap a pair —
// judged by the interaction-aware objective (each candidate's utility scaled
// by the fraction of its occurrences not covered by a selected ancestor,
// exactly the BigSubs marginal-utility rule), subject to the storage budget
// and per-VC cap. Moves are enumerated in sorted signature order and ties
// break the same way, so identical inputs produce identical selections.
func localSearchSelect(cands []Candidate, graph *jobGraph, cfg SelectionConfig) []Candidate {
	if len(cands) == 0 {
		return nil
	}
	// Work over an index-sorted copy so move enumeration is deterministic.
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Recurring < sorted[j].Recurring })

	selected := make([]bool, len(sorted))
	var used int64
	for _, c := range greedySelect(sorted, cfg) {
		for i := range sorted {
			if sorted[i].Recurring == c.Recurring {
				selected[i] = true
				used += sorted[i].StorageCost
			}
		}
	}

	objective := func(sel []bool) float64 {
		chosen := make(map[string]bool)
		for i, on := range sel {
			if on {
				chosen[string(sorted[i].Recurring)] = true
			}
		}
		var total float64
		for i, on := range sel {
			if on {
				total += coverageAdjustedUtility(sorted[i], chosen, graph)
			}
		}
		return total
	}
	count := func(sel []bool) int {
		n := 0
		for _, on := range sel {
			if on {
				n++
			}
		}
		return n
	}
	fits := func(u int64, n int) bool {
		if cfg.StorageBudgetPerVC > 0 && u > cfg.StorageBudgetPerVC {
			return false
		}
		if cfg.MaxViewsPerVC > 0 && n > cfg.MaxViewsPerVC {
			return false
		}
		return true
	}

	cur := objective(selected)
	// The move budget bounds the search: each accepted move strictly improves
	// the objective, so the loop terminates long before the cap in practice.
	for iter := 0; iter < 48; iter++ {
		bestGain := 0.0
		bestAdd, bestDrop := -1, -1
		try := func(add, drop int) {
			u, n := used, count(selected)
			if drop >= 0 {
				u -= sorted[drop].StorageCost
				n--
			}
			if add >= 0 {
				u += sorted[add].StorageCost
				n++
			}
			if !fits(u, n) {
				return
			}
			next := append([]bool(nil), selected...)
			if drop >= 0 {
				next[drop] = false
			}
			if add >= 0 {
				next[add] = true
			}
			if gain := objective(next) - cur; gain > bestGain+1e-9 {
				bestGain, bestAdd, bestDrop = gain, add, drop
			}
		}
		for i := range sorted {
			if !selected[i] {
				try(i, -1) // add
				continue
			}
			try(-1, i) // drop
			for j := range sorted {
				if !selected[j] {
					try(j, i) // swap
				}
			}
		}
		if bestGain <= 0 {
			break
		}
		if bestDrop >= 0 {
			selected[bestDrop] = false
			used -= sorted[bestDrop].StorageCost
		}
		if bestAdd >= 0 {
			selected[bestAdd] = true
			used += sorted[bestAdd].StorageCost
		}
		cur += bestGain
	}

	var out []Candidate
	for i, on := range selected {
		if on {
			out = append(out, sorted[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utility != out[j].Utility {
			return out[i].Utility > out[j].Utility
		}
		return out[i].Recurring < out[j].Recurring
	})
	return out
}

// coverageAdjustedUtility scales a candidate's utility by the fraction of its
// occurrences not covered by a selected ancestor (top-down matching always
// takes the largest materialized subexpression). chosen is keyed by recurring
// signature string.
func coverageAdjustedUtility(c Candidate, chosen map[string]bool, graph *jobGraph) float64 {
	covered := 0
	for anc, coverage := range graph.covers {
		if string(anc) == string(c.Recurring) || !chosen[string(anc)] {
			continue
		}
		if n := coverage[c.Recurring]; n > covered {
			covered = n
		}
	}
	uncovered := c.Frequency - covered
	if uncovered < 2 {
		return 0
	}
	return c.Utility * float64(uncovered) / float64(c.Frequency)
}
