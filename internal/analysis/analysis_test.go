package analysis_test

import (
	"fmt"
	"testing"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/repository"
	"cloudviews/internal/signature"
)

var t0 = time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)

// addJob inserts a job with a single eligible subexpression (plus its trivial
// scan child) into the repo.
func addJob(r *repository.Repo, id, vc string, submit time.Time, recurring, strict string, work float64, bytes int64) {
	r.Add(&repository.JobRecord{
		JobID: id, Cluster: "c", VC: vc, Pipeline: "p-" + id,
		Template: signature.Sig("tmpl-" + recurring),
		Submit:   submit, Start: submit, End: submit.Add(time.Minute),
		Subexprs: []repository.SubexprRecord{
			{JobID: id, Op: "Scan", Strict: signature.Sig(strict + "-scan"), Recurring: signature.Sig(recurring + "-scan"),
				InputDatasets: []string{"A"}, Parent: 1, Eligible: signature.IneligibleTrivial},
			{JobID: id, Op: "Filter", Strict: signature.Sig(strict), Recurring: signature.Sig(recurring),
				InputDatasets: []string{"A"}, Parent: -1, Work: work, Rows: 1000, Bytes: bytes,
				Eligible: signature.EligibleOK},
		},
	})
}

func TestSelectViewsBasics(t *testing.T) {
	r := repository.New()
	// Three occurrences of one strict instance: a solid candidate.
	for i := 0; i < 3; i++ {
		addJob(r, fmt.Sprintf("j%d", i), "vc1", t0.Add(time.Duration(i)*time.Hour), "rec1", "strict1", 500, 10_000)
	}
	// A once-only subexpression: never a candidate.
	addJob(r, "solo", "vc1", t0, "rec2", "strict2", 500, 10_000)

	byVC, rejected := analysis.SelectViews(r, t0, t0.AddDate(0, 0, 1), analysis.SelectionConfig{})
	if rejected != 0 {
		t.Errorf("rejected = %d", rejected)
	}
	cands := byVC["vc1"]
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	c := cands[0]
	if c.Recurring != "rec1" || c.Frequency != 3 || c.Utility <= 0 {
		t.Errorf("candidate = %+v", c)
	}
	if len(c.JobTemplates) != 1 || c.JobTemplates[0] != "tmpl-rec1" {
		t.Errorf("templates = %v", c.JobTemplates)
	}
}

func TestSelectViewsRecurrenceAcrossInstancesIsNotReuse(t *testing.T) {
	r := repository.New()
	// Three occurrences, all DIFFERENT strict instances (daily recurrence
	// over fresh inputs): building a view would never be reused.
	for i := 0; i < 3; i++ {
		addJob(r, fmt.Sprintf("j%d", i), "vc1", t0.AddDate(0, 0, i), "rec1", fmt.Sprintf("strict-%d", i), 500, 10_000)
	}
	byVC, _ := analysis.SelectViews(r, t0, t0.AddDate(0, 0, 5), analysis.SelectionConfig{})
	if len(byVC["vc1"]) != 0 {
		t.Errorf("cross-instance recurrence selected: %+v", byVC["vc1"])
	}
}

func TestSelectViewsNegativeUtilityRejected(t *testing.T) {
	r := repository.New()
	// Cheap computation with a huge artifact: reading the view costs more
	// than recomputing.
	for i := 0; i < 3; i++ {
		addJob(r, fmt.Sprintf("j%d", i), "vc1", t0.Add(time.Duration(i)*time.Hour), "rec1", "s1", 0.001, 50_000_000_000)
	}
	byVC, _ := analysis.SelectViews(r, t0, t0.AddDate(0, 0, 1), analysis.SelectionConfig{})
	if len(byVC["vc1"]) != 0 {
		t.Errorf("negative-utility candidate selected: %+v", byVC["vc1"])
	}
}

func TestScheduleAwareRejection(t *testing.T) {
	r := repository.New()
	// All occurrences of the same instance within seconds of each other:
	// materialization can't finish before the consumers run.
	for i := 0; i < 4; i++ {
		addJob(r, fmt.Sprintf("j%d", i), "vc1", t0.Add(time.Duration(i)*time.Second), "rec1", "s1", 500, 10_000)
	}
	cfg := analysis.SelectionConfig{ScheduleAware: true, ConcurrencyWindow: time.Minute}
	byVC, rejected := analysis.SelectViews(r, t0, t0.AddDate(0, 0, 1), cfg)
	if len(byVC["vc1"]) != 0 || rejected != 1 {
		t.Errorf("selected=%v rejected=%d, want schedule rejection", byVC["vc1"], rejected)
	}
	// Spreading one occurrence out re-qualifies the candidate.
	addJob(r, "late", "vc1", t0.Add(2*time.Hour), "rec1", "s1", 500, 10_000)
	byVC, rejected = analysis.SelectViews(r, t0, t0.AddDate(0, 0, 1), cfg)
	if len(byVC["vc1"]) != 1 || rejected != 0 {
		t.Errorf("selected=%d rejected=%d after spreading", len(byVC["vc1"]), rejected)
	}
}

func TestStorageBudget(t *testing.T) {
	r := repository.New()
	// Two candidates: high-density small one, low-density big one.
	for i := 0; i < 3; i++ {
		addJob(r, fmt.Sprintf("a%d", i), "vc1", t0.Add(time.Duration(i)*time.Hour), "small", "s-small", 800, 1000)
		addJob(r, fmt.Sprintf("b%d", i), "vc1", t0.Add(time.Duration(i)*time.Hour), "big", "s-big", 900, 1_000_000)
	}
	cfg := analysis.SelectionConfig{StorageBudgetPerVC: 2000}
	byVC, _ := analysis.SelectViews(r, t0, t0.AddDate(0, 0, 1), cfg)
	cands := byVC["vc1"]
	if len(cands) != 1 || cands[0].Recurring != "small" {
		t.Errorf("budget selection = %+v, want only the dense candidate", cands)
	}
}

func TestMaxViewsPerVC(t *testing.T) {
	r := repository.New()
	for c := 0; c < 5; c++ {
		for i := 0; i < 3; i++ {
			addJob(r, fmt.Sprintf("c%d-%d", c, i), "vc1", t0.Add(time.Duration(i)*time.Hour),
				fmt.Sprintf("rec%d", c), fmt.Sprintf("s%d", c), 500, 10_000)
		}
	}
	byVC, _ := analysis.SelectViews(r, t0, t0.AddDate(0, 0, 1), analysis.SelectionConfig{MaxViewsPerVC: 2})
	if len(byVC["vc1"]) != 2 {
		t.Errorf("selected = %d, want 2", len(byVC["vc1"]))
	}
}

func TestPerVCPartitioning(t *testing.T) {
	r := repository.New()
	// rec1 occurs mostly in vc1, rec2 only in vc2.
	addJob(r, "a1", "vc1", t0, "rec1", "s1", 500, 10_000)
	addJob(r, "a2", "vc1", t0.Add(time.Hour), "rec1", "s1", 500, 10_000)
	addJob(r, "a3", "vc2", t0.Add(2*time.Hour), "rec1", "s1", 500, 10_000)
	addJob(r, "b1", "vc2", t0, "rec2", "s2", 500, 10_000)
	addJob(r, "b2", "vc2", t0.Add(time.Hour), "rec2", "s2", 500, 10_000)
	byVC, _ := analysis.SelectViews(r, t0, t0.AddDate(0, 0, 1), analysis.SelectionConfig{})
	if len(byVC["vc1"]) != 1 || byVC["vc1"][0].Recurring != "rec1" {
		t.Errorf("vc1 = %+v", byVC["vc1"])
	}
	if len(byVC["vc2"]) != 1 || byVC["vc2"][0].Recurring != "rec2" {
		t.Errorf("vc2 = %+v", byVC["vc2"])
	}
}

// addNestedJob inserts a job where candidate "outer" contains candidate
// "inner".
func addNestedJob(r *repository.Repo, id string, submit time.Time, strictSuffix string) {
	r.Add(&repository.JobRecord{
		JobID: id, Cluster: "c", VC: "vc1", Pipeline: "p",
		Template: "tmpl-nested", Submit: submit, Start: submit, End: submit.Add(time.Minute),
		Subexprs: []repository.SubexprRecord{
			{JobID: id, Op: "Filter", Strict: signature.Sig("inner-" + strictSuffix), Recurring: "inner",
				InputDatasets: []string{"A"}, Parent: 1, Work: 400, Rows: 1000, Bytes: 10_000, Eligible: signature.EligibleOK},
			{JobID: id, Op: "Join", Strict: signature.Sig("outer-" + strictSuffix), Recurring: "outer",
				InputDatasets: []string{"A", "B"}, Parent: -1, Work: 900, Rows: 1000, Bytes: 12_000, Eligible: signature.EligibleOK},
		},
	})
}

func TestBigSubsDropsCoveredInner(t *testing.T) {
	r := repository.New()
	for i := 0; i < 4; i++ {
		addNestedJob(r, fmt.Sprintf("j%d", i), t0.Add(time.Duration(i)*time.Hour), "x")
	}
	greedy, _ := analysis.SelectViews(r, t0, t0.AddDate(0, 0, 1), analysis.SelectionConfig{})
	bigsubs, _ := analysis.SelectViews(r, t0, t0.AddDate(0, 0, 1), analysis.SelectionConfig{UseBigSubs: true})
	if len(greedy["vc1"]) != 2 {
		t.Fatalf("greedy selects both: got %d", len(greedy["vc1"]))
	}
	if len(bigsubs["vc1"]) != 1 || bigsubs["vc1"][0].Recurring != "outer" {
		t.Errorf("bigsubs = %+v, want only the outer candidate", bigsubs["vc1"])
	}
}

func TestBigSubsKeepsInnerWithIndependentUses(t *testing.T) {
	r := repository.New()
	for i := 0; i < 3; i++ {
		addNestedJob(r, fmt.Sprintf("j%d", i), t0.Add(time.Duration(i)*time.Hour), "x")
	}
	// The inner subexpression ALSO occurs standalone in other jobs.
	for i := 0; i < 4; i++ {
		addJob(r, fmt.Sprintf("solo%d", i), "vc1", t0.Add(time.Duration(i)*time.Hour), "inner", "inner-x", 400, 10_000)
	}
	bigsubs, _ := analysis.SelectViews(r, t0, t0.AddDate(0, 0, 1), analysis.SelectionConfig{UseBigSubs: true})
	found := map[signature.Sig]bool{}
	for _, c := range bigsubs["vc1"] {
		found[c.Recurring] = true
	}
	if !found["outer"] || !found["inner"] {
		t.Errorf("want both selected (inner has uncovered uses): %+v", bigsubs["vc1"])
	}
}
