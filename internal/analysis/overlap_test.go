package analysis_test

import (
	"fmt"
	"testing"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/repository"
	"cloudviews/internal/signature"
)

func scanJob(id, cluster, pipeline, dataset string, submit time.Time) *repository.JobRecord {
	return &repository.JobRecord{
		JobID: id, Cluster: cluster, VC: "vc", Pipeline: pipeline,
		Template: signature.Sig("t-" + pipeline), Submit: submit, Start: submit, End: submit.Add(time.Minute),
		Subexprs: []repository.SubexprRecord{
			{JobID: id, Op: "Scan", Strict: signature.Sig("s-" + id), Recurring: signature.Sig("r-" + dataset),
				InputDatasets: []string{dataset}, Parent: -1, Eligible: signature.IneligibleTrivial},
		},
	}
}

func TestConsumerCDF(t *testing.T) {
	r := repository.New()
	// DatasetA: 3 pipelines; DatasetB: 1 pipeline.
	for i := 0; i < 3; i++ {
		r.Add(scanJob(fmt.Sprintf("a%d", i), "c1", fmt.Sprintf("pipe%d", i), "DatasetA", t0))
	}
	r.Add(scanJob("b0", "c1", "pipeX", "DatasetB", t0))

	cdf := analysis.ConsumerCDF(r, t0, t0.Add(time.Hour), "c1")
	if len(cdf) != 2 {
		t.Fatalf("cdf = %d points", len(cdf))
	}
	if cdf[0].Consumers != 1 || cdf[1].Consumers != 3 {
		t.Errorf("cdf = %+v", cdf)
	}
	if cdf[1].Fraction != 1.0 {
		t.Errorf("final fraction = %g", cdf[1].Fraction)
	}
	if got := analysis.PercentileConsumers(cdf, 0.9); got != 3 {
		t.Errorf("p90 = %d", got)
	}
	if got := analysis.PercentileConsumers(nil, 0.9); got != 0 {
		t.Errorf("empty cdf p90 = %d", got)
	}
}

func TestOverlapSeries(t *testing.T) {
	r := repository.New()
	// Week 1: dataset A scanned by 3 jobs (repeated) + one unique job.
	for i := 0; i < 3; i++ {
		r.Add(scanJob(fmt.Sprintf("w1-%d", i), "c1", "p", "A", t0.Add(time.Duration(i)*time.Hour)))
	}
	r.Add(scanJob("w1-u", "c1", "p", "Unique1", t0))
	// Week 2: only unique jobs.
	w2 := t0.AddDate(0, 0, 7)
	r.Add(scanJob("w2-a", "c1", "p", "Unique2", w2))
	r.Add(scanJob("w2-b", "c1", "p", "Unique3", w2))

	pts := analysis.OverlapSeries(r, t0, t0.AddDate(0, 0, 14), 7*24*time.Hour)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].RepeatedPct != 75 { // 3 of 4 instances repeated
		t.Errorf("week1 repeated%% = %g, want 75", pts[0].RepeatedPct)
	}
	if pts[0].AvgRepeatFrequency != 2 { // 4 instances / 2 distinct
		t.Errorf("week1 freq = %g, want 2", pts[0].AvgRepeatFrequency)
	}
	if pts[1].RepeatedPct != 0 {
		t.Errorf("week2 repeated%% = %g, want 0", pts[1].RepeatedPct)
	}
}

func joinJob(id string, datasets []string, recurring string, submit, end time.Time, algo string) *repository.JobRecord {
	return &repository.JobRecord{
		JobID: id, Cluster: "c1", VC: "vc", Pipeline: "p-" + id,
		Template: "t", Submit: submit, Start: submit, End: end,
		Subexprs: []repository.SubexprRecord{
			{JobID: id, Op: "Join", Strict: signature.Sig("s-" + id), Recurring: signature.Sig(recurring),
				InputDatasets: datasets, Parent: -1, JoinAlgo: algo, Eligible: signature.EligibleOK},
		},
	}
}

func TestGeneralizedReuse(t *testing.T) {
	r := repository.New()
	// Two syntactically different joins over the same input set {A,B}.
	r.Add(joinJob("j1", []string{"A", "B"}, "join-v1", t0, t0.Add(time.Minute), "Hash Join"))
	r.Add(joinJob("j2", []string{"A", "B"}, "join-v1", t0.Add(time.Hour), t0.Add(61*time.Minute), "Hash Join"))
	r.Add(joinJob("j3", []string{"A", "B"}, "join-v2", t0, t0.Add(time.Minute), "Hash Join"))
	// A different input set.
	r.Add(joinJob("j4", []string{"C", "D"}, "join-v3", t0, t0.Add(time.Minute), "Merge Join"))

	groups := analysis.GeneralizedReuse(r, t0, t0.AddDate(0, 0, 1))
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	top := groups[0]
	if top.Frequency != 3 || top.DistinctSubexprs != 2 {
		t.Errorf("top group = %+v", top)
	}
	if len(top.Datasets) != 2 || top.Datasets[0] != "A" {
		t.Errorf("datasets = %v", top.Datasets)
	}
}

func TestConcurrentJoins(t *testing.T) {
	r := repository.New()
	// Three overlapping executions of the same join + one disjoint.
	r.Add(joinJob("c1", []string{"A", "B"}, "jr", t0, t0.Add(10*time.Minute), "Hash Join"))
	r.Add(joinJob("c2", []string{"A", "B"}, "jr", t0.Add(time.Minute), t0.Add(9*time.Minute), "Hash Join"))
	r.Add(joinJob("c3", []string{"A", "B"}, "jr", t0.Add(2*time.Minute), t0.Add(8*time.Minute), "Hash Join"))
	r.Add(joinJob("c4", []string{"A", "B"}, "jr", t0.Add(2*time.Hour), t0.Add(2*time.Hour+time.Minute), "Hash Join"))
	// A different join overlapping only once: not reported (<2 peak).
	r.Add(joinJob("d1", []string{"C", "D"}, "other", t0, t0.Add(time.Minute), "Merge Join"))

	stats := analysis.ConcurrentJoins(r, t0, t0.AddDate(0, 0, 1), "c1")
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Concurrency != 3 || stats[0].Algo != "Hash Join" {
		t.Errorf("stat = %+v", stats[0])
	}
	hist := analysis.ConcurrencyHistogram(stats)
	if hist["Hash Join"][3] != 1 {
		t.Errorf("histogram = %+v", hist)
	}
}

func TestConcurrentJoinsTouchingWindowsDoNotOverlap(t *testing.T) {
	r := repository.New()
	end := t0.Add(time.Minute)
	r.Add(joinJob("c1", []string{"A", "B"}, "jr", t0, end, "Hash Join"))
	r.Add(joinJob("c2", []string{"A", "B"}, "jr", end, end.Add(time.Minute), "Hash Join"))
	stats := analysis.ConcurrentJoins(r, t0, t0.AddDate(0, 0, 1), "c1")
	if len(stats) != 0 {
		t.Errorf("back-to-back windows must not count as concurrent: %+v", stats)
	}
}
