package analysis

import (
	"sort"
	"time"

	"cloudviews/internal/exec"
	"cloudviews/internal/repository"
	"cloudviews/internal/signature"
)

// Candidate is one subexpression proposed for materialization.
type Candidate struct {
	Recurring signature.Sig
	Op        string
	VC        string
	// Frequency is the occurrence count in the analysis window.
	Frequency int
	// Utility is the estimated container-seconds saved per analysis window:
	// (freq-1) recomputations avoided, minus the read cost paid on each
	// reuse and the one-time write cost.
	Utility float64
	// StorageCost is the expected logical bytes of the artifact.
	StorageCost   int64
	ExpectedRows  int64
	ExpectedBytes int64
	ExpectedWork  float64
	// JobTemplates are the job templates that contain the subexpression
	// (used to publish annotations under each job's tag).
	JobTemplates []signature.Sig
}

// SelectionConfig tunes view selection.
type SelectionConfig struct {
	// StorageBudgetPerVC bounds the total StorageCost selected per VC
	// (paper: customers configure storage, which "affects the number of
	// views selected"). Zero means unlimited.
	StorageBudgetPerVC int64
	// MaxViewsPerVC caps the candidate count per VC (0 = unlimited).
	MaxViewsPerVC int
	// MinFrequency drops rare subexpressions (default 2).
	MinFrequency int
	// ScheduleAware drops candidates whose occurrences are all submitted
	// within ConcurrencyWindow of each other: the view could not finish
	// materializing before its consumers start (§4, "Schedule-aware views").
	ScheduleAware bool
	// ConcurrencyWindow defines "at the same time" for schedule awareness
	// (default 5 minutes).
	ConcurrencyWindow time.Duration
	// UseBigSubs switches from plain greedy knapsack to the BigSubs-style
	// interaction-aware selector.
	UseBigSubs bool
	// PolicyFor, when set, picks the selection policy per VC by name
	// (PolicyGreedy, PolicyBigSubs, PolicyLocalSearch) — the hook the
	// guard's policy flighting drives. An empty return falls back to the
	// UseBigSubs default, so un-flighted VCs behave exactly as before.
	PolicyFor func(vc string) string
}

// Selection policy names, as flighted per VC via SelectionConfig.PolicyFor.
const (
	PolicyGreedy      = "greedy"
	PolicyBigSubs     = "bigsubs"
	PolicyLocalSearch = "local-search"
)

func (c SelectionConfig) minFreq() int {
	if c.MinFrequency <= 0 {
		return 2
	}
	return c.MinFrequency
}

func (c SelectionConfig) window() time.Duration {
	if c.ConcurrencyWindow <= 0 {
		return 5 * time.Minute
	}
	return c.ConcurrencyWindow
}

// jobGraph captures, per job template, which candidates appear in it and
// their nesting, for interaction-aware selection.
type jobGraph struct {
	// covers[sigA][sigB] counts occurrences of candidate B that sit under an
	// occurrence of candidate A within the same job: if A is materialized,
	// those B occurrences will match A first and B's view goes unused.
	covers map[signature.Sig]map[signature.Sig]int
}

// SelectViews runs view selection over the repository window and returns the
// selected candidates grouped by VC. It also returns the rejected-for-
// schedule count for observability.
func SelectViews(repo *repository.Repo, from, to time.Time, cfg SelectionConfig) (map[string][]Candidate, int) {
	groups := repo.GroupByRecurring(from, to)

	// Build candidates.
	var candidates []Candidate
	scheduleRejected := 0
	for _, g := range groups {
		if !g.Eligible || g.Count < cfg.minFreq() {
			continue
		}
		if g.AvgWork <= 0 || g.AvgBytes <= 0 {
			continue
		}
		// Reuse only happens among occurrences of the SAME strict instance
		// (same inputs, same parameters): recurrences across bulk updates
		// rebuild the view rather than reuse it. The reuse opportunity is
		// therefore occurrences minus distinct instances.
		reuses := g.Count - g.DistinctStrict
		if reuses < cfg.minFreq()-1 {
			continue
		}
		if cfg.ScheduleAware && !anyInstanceReusable(g, cfg.window()) {
			scheduleRejected++
			continue
		}
		readCost := exec.ViewReadWork(int64(g.AvgRows), int64(g.AvgBytes))
		writeCost := exec.SpoolWriteWork(int64(g.AvgBytes))
		utility := float64(reuses)*(g.AvgWork-readCost) - float64(g.DistinctStrict)*writeCost
		if utility <= 0 {
			continue
		}
		// Assign to the VC with the most occurrences (per-customer
		// selection; a view is stored and budgeted in its home VC).
		vc := dominantVC(g.VCCounts)
		candidates = append(candidates, Candidate{
			Recurring:     g.Recurring,
			Op:            g.Op,
			VC:            vc,
			Frequency:     g.Count,
			Utility:       utility,
			StorageCost:   int64(g.AvgBytes),
			ExpectedRows:  int64(g.AvgRows),
			ExpectedBytes: int64(g.AvgBytes),
			ExpectedWork:  g.AvgWork,
		})
	}

	// Attach job templates for annotation publishing and build the nesting
	// graph in one scan.
	graph := buildJobGraph(repo, from, to, candidates)

	byVC := make(map[string][]Candidate)
	for _, c := range candidates {
		byVC[c.VC] = append(byVC[c.VC], c)
	}
	out := make(map[string][]Candidate, len(byVC))
	for vc, cands := range byVC {
		out[vc] = selectForVC(vc, cands, graph, cfg)
	}
	return out, scheduleRejected
}

// selectForVC dispatches one VC's candidates to its selection policy.
func selectForVC(vc string, cands []Candidate, graph *jobGraph, cfg SelectionConfig) []Candidate {
	policy := ""
	if cfg.PolicyFor != nil {
		policy = cfg.PolicyFor(vc)
	}
	if policy == "" {
		if cfg.UseBigSubs {
			policy = PolicyBigSubs
		} else {
			policy = PolicyGreedy
		}
	}
	switch policy {
	case PolicyLocalSearch:
		return localSearchSelect(cands, graph, cfg)
	case PolicyBigSubs:
		return bigSubsSelect(cands, graph, cfg)
	default:
		return greedySelect(cands, cfg)
	}
}

// anyInstanceReusable reports whether at least one strict instance of the
// group has a consumer submitted more than window after the instance's first
// occurrence — i.e., materialization could finish before somebody reuses it.
// Groups where every instance's occurrences land together are the §4
// schedule-aware rejection case ("jobs that get scheduled at the same time
// cannot benefit from such reuse").
// The repository pins GroupStat occurrence order (submit time, then strict
// signature, then job ID), so Submits is ascending and the scan below is
// deterministic across the sharded and naive aggregation paths.
func anyInstanceReusable(g *repository.GroupStat, window time.Duration) bool {
	earliest := make(map[signature.Sig]time.Time)
	for i, strict := range g.SubmitStrict {
		t := g.Submits[i]
		if e, ok := earliest[strict]; !ok || t.Before(e) {
			earliest[strict] = t
		}
	}
	for i, strict := range g.SubmitStrict {
		if g.Submits[i].Sub(earliest[strict]) > window {
			return true
		}
	}
	return false
}

// dominantVC picks the VC with the most occurrences of the group
// (deterministic tie-break on name).
func dominantVC(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for vc := range counts {
		keys = append(keys, vc)
	}
	sort.Strings(keys)
	best, bestN := "", -1
	for _, vc := range keys {
		if counts[vc] > bestN {
			best, bestN = vc, counts[vc]
		}
	}
	return best
}

// buildJobGraph fills JobTemplates on each candidate and records the
// ancestor/descendant pairs among candidates that co-occur in a job.
func buildJobGraph(repo *repository.Repo, from, to time.Time, candidates []Candidate) *jobGraph {
	candIdx := make(map[signature.Sig]int, len(candidates))
	for i, c := range candidates {
		candIdx[c.Recurring] = i
	}
	graph := &jobGraph{covers: make(map[signature.Sig]map[signature.Sig]int)}
	templateSeen := make(map[signature.Sig]map[signature.Sig]bool)

	for _, j := range repo.JobsBetween(from, to) {
		for si, s := range j.Subexprs {
			ci, ok := candIdx[s.Recurring]
			if !ok {
				continue
			}
			// Job template membership.
			set, ok := templateSeen[s.Recurring]
			if !ok {
				set = make(map[signature.Sig]bool)
				templateSeen[s.Recurring] = set
			}
			if !set[j.Template] {
				set[j.Template] = true
				candidates[ci].JobTemplates = append(candidates[ci].JobTemplates, j.Template)
			}
			// Walk ancestors: any candidate above s covers this occurrence.
			seen := map[signature.Sig]bool{}
			p := j.Subexprs[si].Parent
			for p >= 0 {
				anc := j.Subexprs[p]
				if _, isCand := candIdx[anc.Recurring]; isCand && !seen[anc.Recurring] {
					seen[anc.Recurring] = true
					m, ok := graph.covers[anc.Recurring]
					if !ok {
						m = make(map[signature.Sig]int)
						graph.covers[anc.Recurring] = m
					}
					m[s.Recurring]++
				}
				p = anc.Parent
			}
		}
	}
	return graph
}

// greedySelect is the baseline: sort by utility density and take while budget
// allows.
func greedySelect(cands []Candidate, cfg SelectionConfig) []Candidate {
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		di := sorted[i].Utility / float64(max64(sorted[i].StorageCost, 1))
		dj := sorted[j].Utility / float64(max64(sorted[j].StorageCost, 1))
		if di != dj {
			return di > dj
		}
		return sorted[i].Recurring < sorted[j].Recurring
	})
	var out []Candidate
	var used int64
	for _, c := range sorted {
		if cfg.MaxViewsPerVC > 0 && len(out) >= cfg.MaxViewsPerVC {
			break
		}
		if cfg.StorageBudgetPerVC > 0 && used+c.StorageCost > cfg.StorageBudgetPerVC {
			continue
		}
		out = append(out, c)
		used += c.StorageCost
	}
	return out
}

// bigSubsSelect is the BigSubs-style interaction-aware selector, an
// approximation of the bipartite query/subexpression optimization of Jindal
// et al. [24] with deterministic rounding: a candidate's MARGINAL utility is
// its original utility scaled by the fraction of its occurrences NOT covered
// by a currently selected ancestor candidate (top-down matching always takes
// the largest materialized subexpression, so covered occurrences never read
// the inner view). The label assignment iterates to a fixpoint.
func bigSubsSelect(cands []Candidate, graph *jobGraph, cfg SelectionConfig) []Candidate {
	selected := make(map[signature.Sig]bool)
	// Start from the greedy solution.
	for _, c := range greedySelect(cands, cfg) {
		selected[c.Recurring] = true
	}

	for iter := 0; iter < 6; iter++ {
		adjusted := make([]Candidate, 0, len(cands))
		for _, c := range cands {
			covered := 0
			for anc, coverage := range graph.covers {
				if anc == c.Recurring || !selected[anc] {
					continue
				}
				if n := coverage[c.Recurring]; n > covered {
					covered = n
				}
			}
			uncovered := c.Frequency - covered
			if uncovered < 2 {
				continue // every reuse opportunity is subsumed by an ancestor
			}
			c.Utility *= float64(uncovered) / float64(c.Frequency)
			adjusted = append(adjusted, c)
		}
		next := greedySelect(adjusted, cfg)
		nextSet := make(map[signature.Sig]bool, len(next))
		for _, c := range next {
			nextSet[c.Recurring] = true
		}
		if setsEqual(selected, nextSet) {
			break
		}
		selected = nextSet
	}

	// Materialize the final set preserving original utilities.
	var out []Candidate
	for _, c := range cands {
		if selected[c.Recurring] {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Utility > out[j].Utility })
	return out
}

func setsEqual(a, b map[signature.Sig]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
