// Package analysis implements the offline workload-analysis half of
// CloudViews: the overlap statistics behind Figures 2, 3, 8, and 9, and the
// view-selection algorithms (a greedy knapsack and a BigSubs-style
// interaction-aware selector) that decide which recurring subexpressions to
// materialize under per-VC storage budgets.
package analysis

import (
	"sort"
	"time"

	"cloudviews/internal/repository"
	"cloudviews/internal/signature"
)

// ConsumerPoint is one point of the Figure 2 CDF: after sorting datasets by
// consumer count, Fraction of input streams have at most Consumers distinct
// consumers.
type ConsumerPoint struct {
	Fraction  float64
	Consumers int
}

// ConsumerCDF computes the shared-dataset CDF for one cluster over a window
// (Figure 2). Datasets with zero observed consumers are excluded, matching
// the paper's "input data streams" framing.
func ConsumerCDF(repo *repository.Repo, from, to time.Time, cluster string) []ConsumerPoint {
	consumers := repo.DatasetConsumers(from, to, cluster)
	counts := make([]int, 0, len(consumers))
	for _, set := range consumers {
		if len(set) > 0 {
			counts = append(counts, len(set))
		}
	}
	sort.Ints(counts)
	out := make([]ConsumerPoint, len(counts))
	for i, c := range counts {
		out[i] = ConsumerPoint{Fraction: float64(i+1) / float64(len(counts)), Consumers: c}
	}
	return out
}

// PercentileConsumers returns the consumer count at the given top quantile,
// e.g. q=0.9 answers "10% of the inputs get reused by more than N downstream
// consumers".
func PercentileConsumers(cdf []ConsumerPoint, q float64) int {
	if len(cdf) == 0 {
		return 0
	}
	idx := int(q * float64(len(cdf)))
	if idx >= len(cdf) {
		idx = len(cdf) - 1
	}
	return cdf[idx].Consumers
}

// OverlapPoint is one bucket of the Figure 3 series.
type OverlapPoint struct {
	Start time.Time
	// RepeatedPct is the percentage of subexpression instances whose
	// recurring signature occurs more than once in the bucket.
	RepeatedPct float64
	// AvgRepeatFrequency is instances / distinct recurring signatures.
	AvgRepeatFrequency float64
	// Instances and Distinct are the raw counts.
	Instances int
	Distinct  int
}

// OverlapSeries computes the repeated-subexpression percentage and average
// repeat frequency per bucket over [from, to) (Figure 3: 10 months, weekly
// buckets in the paper).
func OverlapSeries(repo *repository.Repo, from, to time.Time, bucket time.Duration) []OverlapPoint {
	var out []OverlapPoint
	for start := from; start.Before(to); start = start.Add(bucket) {
		end := start.Add(bucket)
		if end.After(to) {
			end = to
		}
		groups := repo.GroupByRecurring(start, end)
		instances, repeated := 0, 0
		for _, g := range groups {
			instances += g.Count
			if g.Count > 1 {
				repeated += g.Count
			}
		}
		p := OverlapPoint{Start: start, Instances: instances, Distinct: len(groups)}
		if instances > 0 {
			p.RepeatedPct = 100 * float64(repeated) / float64(instances)
			p.AvgRepeatFrequency = float64(instances) / float64(len(groups))
		}
		out = append(out, p)
	}
	return out
}

// JoinSetGroup is one Figure 8 group: subexpressions that join the same set
// of inputs (and could be merged into a generalized view), with the total
// occurrence frequency.
type JoinSetGroup struct {
	Datasets []string
	// DistinctSubexprs is how many different recurring subexpressions join
	// this input set.
	DistinctSubexprs int
	// Frequency is the total occurrence count across those subexpressions.
	Frequency int
}

// GeneralizedReuse groups join subexpressions by their joined input sets
// (Figure 8). Only multi-input subexpressions participate; groups are
// returned sorted by descending frequency.
func GeneralizedReuse(repo *repository.Repo, from, to time.Time) []JoinSetGroup {
	groups := repo.GroupByRecurring(from, to)
	bySet := make(map[string]*JoinSetGroup)
	for _, g := range groups {
		if g.Op != "Join" || len(g.InputDatasets) < 2 {
			continue
		}
		key := ""
		for _, d := range g.InputDatasets {
			key += d + "|"
		}
		jg, ok := bySet[key]
		if !ok {
			jg = &JoinSetGroup{Datasets: g.InputDatasets}
			bySet[key] = jg
		}
		jg.DistinctSubexprs++
		jg.Frequency += g.Count
	}
	out := make([]JoinSetGroup, 0, len(bySet))
	for _, jg := range bySet {
		out = append(out, *jg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return joinKey(out[i].Datasets) < joinKey(out[j].Datasets)
	})
	return out
}

func joinKey(ds []string) string {
	k := ""
	for _, d := range ds {
		k += d + "|"
	}
	return k
}

// ConcurrentJoinStat is one Figure 9 histogram entry: a join subexpression
// that executed with the given peak concurrency under the given algorithm.
type ConcurrentJoinStat struct {
	Recurring   signature.Sig
	Algo        string
	Concurrency int
}

// ConcurrentJoins finds joins that execute concurrently (overlapping
// execution windows of the same recurring join) within [from, to) on one
// cluster — the reuse opportunity CloudViews cannot capture without pipelined
// sharing (§5.4). Returns per-signature peak concurrency, descending.
func ConcurrentJoins(repo *repository.Repo, from, to time.Time, cluster string) []ConcurrentJoinStat {
	execs := repo.JoinExecutions(from, to, cluster)
	type key struct {
		sig  signature.Sig
		algo string
	}
	byKey := make(map[key][]repository.JoinExecution)
	for _, e := range execs {
		k := key{e.Recurring, e.Algo}
		byKey[k] = append(byKey[k], e)
	}
	var out []ConcurrentJoinStat
	for k, es := range byKey {
		// Sweep line: +1 at start, -1 at end; peak overlap is the maximum.
		type ev struct {
			at    time.Time
			delta int
		}
		var evs []ev
		for _, e := range es {
			evs = append(evs, ev{e.Start, +1}, ev{e.End, -1})
		}
		sort.Slice(evs, func(i, j int) bool {
			if !evs[i].at.Equal(evs[j].at) {
				return evs[i].at.Before(evs[j].at)
			}
			return evs[i].delta < evs[j].delta // ends before starts at same instant
		})
		cur, peak := 0, 0
		for _, e := range evs {
			cur += e.delta
			if cur > peak {
				peak = cur
			}
		}
		if peak >= 2 {
			out = append(out, ConcurrentJoinStat{Recurring: k.sig, Algo: k.algo, Concurrency: peak})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Concurrency != out[j].Concurrency {
			return out[i].Concurrency > out[j].Concurrency
		}
		return out[i].Recurring < out[j].Recurring
	})
	return out
}

// ConcurrencyHistogram buckets the Figure 9 stats: per algorithm, a map from
// concurrency level to the number of join signatures at that level.
func ConcurrencyHistogram(stats []ConcurrentJoinStat) map[string]map[int]int {
	out := make(map[string]map[int]int)
	for _, s := range stats {
		m, ok := out[s.Algo]
		if !ok {
			m = make(map[int]int)
			out[s.Algo] = m
		}
		m[s.Concurrency]++
	}
	return out
}
