package core

import (
	"fmt"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/cluster"
	"cloudviews/internal/exec"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/guard"
	"cloudviews/internal/insights"
	"cloudviews/internal/optimizer"
	"cloudviews/internal/plan"
	"cloudviews/internal/repository"
	"cloudviews/internal/signature"
	"cloudviews/internal/sqlparser"
	"cloudviews/internal/stats"
	"cloudviews/internal/telemetry"
	"cloudviews/internal/workload"
)

// DayMetrics aggregates one simulated day — the unit the paper's Figure 6/7
// series plot cumulatively.
type DayMetrics struct {
	Day  int
	Date time.Time
	Jobs int

	LatencySec    float64
	ProcessingSec float64
	BonusSec      float64
	Containers    int64
	InputBytes    int64
	DataReadBytes int64
	QueueLen      int64
	ViewsBuilt    int
	ViewsReused   int

	// Fault/recovery totals (zero on fault-free runs).
	JobRetries       int
	StageRetries     int
	BonusPreemptions int
	FaultDelaySec    float64
	ReuseFallbacks   int

	// MedianLatencyImprovementInput: per-job latencies for median statistics.
	JobLatencies []float64

	// Alerts are the SLO watchdog findings for this day, in deterministic
	// firing order (empty on healthy days and when observability is off).
	Alerts []telemetry.Alert

	// GuardDecisions are the guard's state transitions for this day (breaker
	// trips, kill-switch moves, flight rollbacks), in deterministic order
	// (empty when the guard is disabled).
	GuardDecisions []guard.Decision
}

// RunDay executes one day's jobs end to end: data plane in submission order,
// then the cluster schedule, then repository/metric recording. The executor
// result cache is reset daily (inputs regenerate daily, so strict signatures
// rarely survive a day boundary).
func (e *Engine) RunDay(day int, jobs []workload.JobInput) (DayMetrics, error) {
	e.resetCache()
	dayStart := fixtures.Epoch.AddDate(0, 0, day)

	runs := make([]*JobRun, 0, len(jobs))
	specs := make([]cluster.JobSpec, 0, len(jobs))
	for _, in := range jobs {
		run, err := e.CompileAndExecute(in)
		if err != nil {
			return DayMetrics{}, err
		}
		runs = append(runs, run)
		specs = append(specs, cluster.JobSpec{
			ID:     in.ID,
			VC:     in.VC,
			Submit: in.Submit,
			Stages: run.Stages,
			// Time lost to failed job attempts is charged like compile
			// latency: it delays the job's start without consuming tokens.
			Compile: run.Compile.CompileLatency + run.RetryDelay,
			Attempt: run.Attempts,
		})
	}

	outcomes, err := e.Sim.Run(specs)
	if err != nil {
		return DayMetrics{}, err
	}
	byID := make(map[string]cluster.Outcome, len(outcomes))
	for _, o := range outcomes {
		byID[o.ID] = o
	}

	m := DayMetrics{Day: day, Date: dayStart, Jobs: len(runs)}
	for _, run := range runs {
		o, ok := byID[run.Input.ID]
		if !ok {
			return DayMetrics{}, fmt.Errorf("core: job %s missing from schedule", run.Input.ID)
		}
		rec := run.Record
		rec.Start = o.Start
		rec.End = o.End
		rec.LatencySec = o.Latency.Seconds()
		rec.ProcessingSec = o.Processing
		rec.BonusSec = o.Bonus
		rec.Containers = o.Containers
		rec.InputBytes = run.Exec.InputBytes
		rec.DataReadBytes = run.Exec.TotalRead
		rec.QueueLen = o.QueueLenAtStart
		rec.Attempts = run.Attempts
		rec.StageRetries = o.StageRetries
		rec.BonusPreemptions = o.BonusPreemptions
		// FaultDelay covers the cluster schedule's retry/preemption cost plus
		// the data plane's job-retry delay.
		rec.FaultDelaySec = o.FaultDelay.Seconds() + run.RetryDelay.Seconds()
		rec.ReuseFallbacks = run.Exec.ReuseFallbacks
		// The repository owns its own copy of the record (deep-copied at Add),
		// so the scheduling outcome must be applied through its API.
		e.Repo.SetOutcome(rec.JobID, repository.Outcome{
			Start:            rec.Start,
			End:              rec.End,
			LatencySec:       rec.LatencySec,
			ProcessingSec:    rec.ProcessingSec,
			BonusSec:         rec.BonusSec,
			Containers:       rec.Containers,
			InputBytes:       rec.InputBytes,
			DataReadBytes:    rec.DataReadBytes,
			QueueLen:         rec.QueueLen,
			Attempts:         rec.Attempts,
			StageRetries:     rec.StageRetries,
			BonusPreemptions: rec.BonusPreemptions,
			FaultDelaySec:    rec.FaultDelaySec,
			ReuseFallbacks:   rec.ReuseFallbacks,
		})
		if o.QueueWait > 0 {
			run.Trace.SpanAt("queue:cluster", o.Start.Add(-o.QueueWait), o.QueueWait)
			// The data plane already observed this job (without the cluster
			// queue, which only the schedule knows), so the queue time is
			// charged onto the day's breakdown here.
			e.Telemetry.AddQueueWait(day, rec.VC, o.QueueWait.Seconds())
		}
		// Cluster-side recovery cost (stage retries, preemptions); the data
		// plane's own job-retry delay was already counted from the trace.
		e.Telemetry.AddFaultLoss(day, rec.VC, o.FaultDelay.Seconds())
		// The guard's per-VC latency series uses the scheduled latency, which
		// only the cluster outcome knows.
		e.guard.AddLatency(day, rec.VC, rec.LatencySec)

		e.History.RecordJob(rec.Template, stats.Observation{
			Rows:    0,
			Bytes:   rec.InputBytes,
			Work:    rec.ProcessingSec,
			Latency: rec.LatencySec,
		})

		m.LatencySec += rec.LatencySec
		m.ProcessingSec += rec.ProcessingSec
		m.BonusSec += rec.BonusSec
		m.Containers += int64(rec.Containers)
		m.InputBytes += rec.InputBytes
		m.DataReadBytes += rec.DataReadBytes
		m.QueueLen += int64(rec.QueueLen)
		m.ViewsBuilt += rec.ViewsBuilt
		m.ViewsReused += rec.ViewsReused
		if rec.Attempts > 1 {
			m.JobRetries += rec.Attempts - 1
		}
		m.StageRetries += rec.StageRetries
		m.BonusPreemptions += rec.BonusPreemptions
		m.FaultDelaySec += rec.FaultDelaySec
		m.ReuseFallbacks += rec.ReuseFallbacks
		m.JobLatencies = append(m.JobLatencies, rec.LatencySec)
	}

	// End of day: advance the clock past the last completion and expire old
	// views, then sample the telemetry series and run the SLO watchdog over
	// the day's data.
	e.SetClock(dayStart.AddDate(0, 0, 1))
	e.Store.GC()
	// The guard's day-boundary state machine runs before the telemetry
	// sample so the sampled guard gauges reflect the day's transitions.
	m.GuardDecisions = e.guard.EndOfDay(day)
	m.Alerts = e.sampleTelemetry(day, &m)
	return m, nil
}

// sampleTelemetry takes the day-boundary sample: the full metrics-registry
// snapshot plus derived per-day gauges from DayMetrics and the substrates,
// then evaluates the watchdog and returns the day's alerts. No-op (nil) when
// observability is disabled.
func (e *Engine) sampleTelemetry(day int, m *DayMetrics) []telemetry.Alert {
	if e.Telemetry == nil {
		return nil
	}
	sample := make(map[string]float64, 64)
	telemetry.SampleRegistry(e.Metrics, sample)

	jobs := float64(m.Jobs)
	sample[telemetry.SeriesJobs] = jobs
	hitRate := 0.0
	queueAvg := 0.0
	if m.Jobs > 0 {
		hitRate = float64(m.ViewsReused) / jobs
		queueAvg = float64(m.QueueLen) / jobs
	}
	sample[telemetry.SeriesHitRate] = hitRate
	sample[telemetry.SeriesLatencySec] = m.LatencySec
	sample[telemetry.SeriesProcessingSec] = m.ProcessingSec
	sample[telemetry.SeriesBonusSec] = m.BonusSec
	sample[telemetry.SeriesQueueLenAvg] = queueAvg
	sample[telemetry.SeriesViewsBuilt] = float64(m.ViewsBuilt)
	sample[telemetry.SeriesViewsReused] = float64(m.ViewsReused)
	sample[telemetry.SeriesFaultDelaySec] = m.FaultDelaySec
	sample[telemetry.SeriesFaultRecoveries] = float64(m.JobRetries + m.StageRetries + m.BonusPreemptions + m.ReuseFallbacks)

	// Substrate gauges that live outside the registry (the storage gauges in
	// the registry are per-VC; these are the cluster-wide views).
	stats := e.Store.Snapshot()
	sample[telemetry.SeriesStoreLiveViews] = float64(stats.Live)
	sample[telemetry.SeriesStorePending] = float64(e.Store.PendingViews())
	sample[telemetry.SeriesRepoJobs] = float64(e.Repo.Len())
	sample[telemetry.SeriesRepoSubexprs] = float64(e.Repo.SubexprCount())

	// Guard gauges enter the sample only when a guard exists, keeping
	// guard-free telemetry exports byte-identical to earlier builds.
	e.guard.Sample(sample)

	// Labeled miss-reason series from the explain layer: one point per
	// reason with traffic today (absent reasons produce no series).
	e.Telemetry.DecisionSample(day, sample)

	return e.Telemetry.EndOfDay(day, sample)
}

// RunAnalysis executes the offline half of the feedback loop over the
// trailing window [from, to): view selection over the workload repository and
// annotation publishing to the insights service. It returns the number of
// tags published and the candidates rejected by schedule-aware filtering.
func (e *Engine) RunAnalysis(from, to time.Time) (tags int, scheduleRejected int) {
	sel := e.Selection
	if e.guard != nil && sel.PolicyFor == nil {
		// Policy flighting: the guard assigns each VC its selection policy
		// (and pins rolled-back VCs to the control arm).
		sel.PolicyFor = e.guard.PolicyFor
	}
	byVC, rejected := analysis.SelectViews(e.Repo, from, to, sel)
	perTag := make(map[signature.Tag][]insights.Annotation)
	for vc, cands := range byVC {
		for _, c := range cands {
			ann := insights.Annotation{
				Recurring:     c.Recurring,
				VC:            vc,
				ExpectedRows:  c.ExpectedRows,
				ExpectedBytes: c.ExpectedBytes,
				ExpectedWork:  c.ExpectedWork,
				Utility:       c.Utility,
			}
			for _, tmpl := range c.JobTemplates {
				tag := signature.TagForTemplate(tmpl)
				perTag[tag] = append(perTag[tag], ann)
			}
		}
	}
	// Replace the whole annotation state: candidates that fell out of the
	// window stop being selected, so their views stop being materialized —
	// the just-in-time property of §2.4.
	e.Insights.ReplaceAllAnnotations(perTag)
	return len(perTag), rejected
}

// RecordWorkloadDay compiles (but does not execute or schedule) a day's jobs
// and records their subexpressions in the workload repository — the
// telemetry-only mode the long-window workload analyses use (Figures 2, 3,
// 8), where only compile-time overlap structure matters.
func (e *Engine) RecordWorkloadDay(day int, jobs []workload.JobInput) error {
	_ = day
	for _, in := range jobs {
		e.advanceClock(in.Submit)
		signer := e.signerFor(in.Runtime)
		script, err := sqlparser.Parse(in.Script)
		if err != nil {
			return fmt.Errorf("job %s: parse: %w", in.ID, err)
		}
		binder := &plan.Binder{Catalog: e.Catalog, Params: in.Params}
		outs, err := binder.BindScript(script)
		if err != nil {
			return fmt.Errorf("job %s: bind: %w", in.ID, err)
		}
		if len(outs) != 1 {
			return fmt.Errorf("job %s: expected exactly one OUTPUT, got %d", in.ID, len(outs))
		}
		opt := &optimizer.Optimizer{Signer: signer, Est: e.Est, History: e.History}
		cr := opt.Compile(outs[0], optimizer.CompileOptions{
			JobID: in.ID, Cluster: in.Cluster, VC: in.VC, OptIn: false,
		})
		rec := e.buildRecord(in, cr, &exec.RunResult{}, signer.Subexpressions(cr.Plan))
		rec.Start = in.Submit
		rec.End = in.Submit
		e.Repo.Add(rec)
	}
	return nil
}
