package core_test

import (
	"math"
	"testing"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/core"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/telemetry"
	"cloudviews/internal/workload"
)

// newSystemSLO is newSystem with a custom watchdog configuration.
func newSystemSLO(t *testing.T, slo telemetry.SLOConfig) (*core.Engine, *workload.Generator) {
	t.Helper()
	cat := catalog.New()
	gen := workload.NewGenerator(cat, smallProfile())
	if err := gen.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	var vcCfgs []cluster.VCConfig
	for _, vc := range gen.VCNames() {
		vcCfgs = append(vcCfgs, cluster.VCConfig{Name: vc, Tokens: 60})
	}
	eng := core.NewEngine(core.Config{
		ClusterName: "TestC",
		Catalog:     cat,
		ClusterCfg:  cluster.Config{Capacity: 400, VCs: vcCfgs},
		Selection:   analysis.SelectionConfig{ScheduleAware: true, UseBigSubs: true},
		SLO:         slo,
	})
	return eng, gen
}

// TestCriticalPathReconcilesOverWorkload is the acceptance property test: for
// every job of a generated multi-day workload (including view builders and
// reusers), the critical-path analyzer's per-phase attribution sums exactly to
// the trace's wall span.
func TestCriticalPathReconcilesOverWorkload(t *testing.T) {
	eng, gen := newSystem(t)
	for _, vc := range gen.VCNames() {
		eng.OnboardVC(vc)
	}
	analyzed := 0
	for day := 0; day < 3; day++ {
		if day > 0 {
			if err := gen.AdvanceDay(day); err != nil {
				t.Fatal(err)
			}
		}
		for _, in := range gen.JobsForDay(day) {
			run, err := eng.CompileAndExecute(in)
			if err != nil {
				t.Fatal(err)
			}
			bd := telemetry.Analyze(run.Trace)
			var sum float64
			for _, sec := range bd.Phase {
				sum += sec
			}
			tol := 1e-9 * math.Max(1, bd.WallSec)
			if diff := math.Abs(sum - bd.WallSec); diff > tol {
				t.Fatalf("job %s: phases sum %.12f != wall %.12f (diff %g)\nphases: %v\ntrace:\n%s",
					in.ID, sum, bd.WallSec, diff, bd.Phase, run.Trace.Render())
			}
			if bd.WallSec <= 0 {
				t.Fatalf("job %s: wall span %v, want > 0", in.ID, bd.WallSec)
			}
			analyzed++
		}
		to := fixtures.Epoch.AddDate(0, 0, day+1)
		eng.RunAnalysis(to.Add(-7*24*time.Hour), to)
	}
	if analyzed == 0 {
		t.Fatal("no jobs analyzed")
	}
}

// TestRunDayCollectsTelemetry pins the tentpole wiring: RunDay feeds the
// collector (per-day critical path including the cluster queue overlay, day
// series from the registry snapshot) and the default watchdog stays silent on
// a clean run.
func TestRunDayCollectsTelemetry(t *testing.T) {
	eng, gen := newSystem(t)
	for _, vc := range gen.VCNames() {
		eng.OnboardVC(vc)
	}
	for day := 0; day < 2; day++ {
		if day > 0 {
			if err := gen.AdvanceDay(day); err != nil {
				t.Fatal(err)
			}
		}
		jobs := gen.JobsForDay(day)
		m, err := eng.RunDay(day, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Alerts) != 0 {
			t.Errorf("day %d: default watchdog fired on a clean run: %v", day, m.Alerts)
		}
		to := fixtures.Epoch.AddDate(0, 0, day+1)
		eng.RunAnalysis(to.Add(-7*24*time.Hour), to)
	}

	rt := eng.Telemetry.Snapshot()
	if rt == nil || len(rt.Days) != 2 {
		t.Fatalf("telemetry days = %+v", rt)
	}
	d := rt.Days[0]
	if d.Jobs == 0 || d.WallSec <= 0 || d.Phase["execute"] <= 0 {
		t.Errorf("day 0 aggregates not populated: %+v", d)
	}
	// The cluster queue overlay is charged through AddQueueWait, not the
	// data-plane trace; a loaded day must show queue time.
	if d.Phase["queue"] <= 0 {
		t.Errorf("day 0 has no queue attribution: %v", d.Phase)
	}
	if len(d.VCNames) == 0 {
		t.Error("day 0 has no per-VC breakdown")
	}
	for _, name := range []string{
		telemetry.SeriesJobs, telemetry.SeriesHitRate, telemetry.SeriesQueueLenAvg,
		telemetry.SeriesStoreLiveViews, telemetry.SeriesRepoJobs,
		"cloudviews_jobs_total",
	} {
		s := rt.SeriesByName(name)
		if s == nil || s.Count != 2 {
			t.Errorf("series %q missing or short: %+v", name, s)
		}
	}
	if jobs := rt.SeriesByName(telemetry.SeriesJobs); jobs != nil && jobs.Last != float64(rt.Days[1].Jobs) {
		t.Errorf("day_jobs last %v != day 1 jobs %d", jobs.Last, rt.Days[1].Jobs)
	}
	if len(rt.Alerts) != 0 {
		t.Errorf("clean run accumulated alerts: %v", rt.Alerts)
	}
}

// TestWatchdogFiresOnStorageBudget forces the storage SLO over budget (1 byte
// per VC) and requires the seeded regression scenario to page — the other
// half of the "fires there, silent on clean runs" acceptance criterion.
func TestWatchdogFiresOnStorageBudget(t *testing.T) {
	eng, gen := newSystemSLO(t, telemetry.SLOConfig{StorageBudgetPerVC: 1})
	for _, vc := range gen.VCNames() {
		eng.OnboardVC(vc)
	}
	var fired []telemetry.Alert
	for day := 0; day < 3; day++ {
		if day > 0 {
			if err := gen.AdvanceDay(day); err != nil {
				t.Fatal(err)
			}
		}
		m, err := eng.RunDay(day, gen.JobsForDay(day))
		if err != nil {
			t.Fatal(err)
		}
		fired = append(fired, m.Alerts...)
		to := fixtures.Epoch.AddDate(0, 0, day+1)
		eng.RunAnalysis(to.Add(-7*24*time.Hour), to)
	}
	if len(fired) == 0 {
		t.Fatal("storage budget of 1 byte never paged across a view-building window")
	}
	sawBudget := false
	for _, a := range fired {
		if a.Rule == "storage-budget" {
			sawBudget = true
			if a.Severity != telemetry.SevPage {
				t.Errorf("storage-budget alert severity = %s, want page", a.Severity)
			}
			if a.Value <= 1 {
				t.Errorf("storage-budget alert value = %v, want > budget", a.Value)
			}
		}
	}
	if !sawBudget {
		t.Errorf("no storage-budget alert among: %v", fired)
	}
	if v := telemetry.Verdict(eng.Telemetry.Alerts()); v == "OK" {
		t.Error("verdict must report the regression")
	}
	// DayMetrics.Alerts and the collector's accumulated log must agree.
	if all := eng.Telemetry.Alerts(); len(all) != len(fired) {
		t.Errorf("collector has %d alerts, days surfaced %d", len(all), len(fired))
	}
}
