package core

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"cloudviews/internal/data"
	"cloudviews/internal/optimizer"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/sqlparser"
	"cloudviews/internal/workload"
)

// DefaultPlanCacheSize bounds the compiled-plan cache. Recurring workloads
// have a small template population (the paper's clusters see tens of
// thousands of templates against millions of jobs), so a modest LRU captures
// nearly all repeats.
const DefaultPlanCacheSize = 512

// planKey identifies one compilable unit: the token-normalized script (so
// whitespace/comment/case-of-keyword variants share an entry), the exact
// parameter bindings, and the runtime version (different runtimes never share
// signatures, so they must not share plans either).
type planKey struct {
	runtime string
	norm    string
	params  string
}

// planEntry caches the two reuse levels for one key. gen pins the catalog
// generation the entry was built against; any catalog mutation invalidates it
// (binding resolves schemas and the estimates sample dataset sizes).
type planEntry struct {
	gen  uint64
	root plan.Node // bound script output (level 1: skips parse + bind)

	// compiled is the full compile product (level 2), present only for jobs
	// the CloudViews controls disabled: their compilation is a pure function
	// of (root, estimates), with no view matching, no spool proposals, and no
	// insights round trip — so replaying it is sound whenever the controls
	// are still off and a fresh estimate pass agrees exactly.
	compiled *compiledPlan

	prev, next *planEntry
	key        planKey
}

// compiledPlan bundles everything CompileAndExecute derives from a compile
// that executions re-derive per submission: the compile result, the physical
// signature map the result cache is keyed by, and the subexpression
// enumeration the repository record is built from.
type compiledPlan struct {
	cr     *optimizer.CompileResult
	sigMap map[plan.Node]signature.Sig
	subs   []signature.Subexpr
	stages *stageTemplate
}

// planCache is a bounded LRU over planEntry. A nil *planCache disables
// caching entirely (every method no-ops).
type planCache struct {
	mu         sync.Mutex
	m          map[planKey]*planEntry
	head, tail *planEntry
	limit      int

	// norms memoizes NormalizeScript by raw script text: recurring workloads
	// resubmit a small population of byte-identical scripts, so a map hit
	// replaces re-lexing the script on every submission.
	normMu sync.Mutex
	norms  map[string]normEntry

	hits, misses atomic.Uint64
}

type normEntry struct {
	norm string
	ok   bool
}

func newPlanCache(limit int) *planCache {
	if limit < 0 {
		return nil
	}
	if limit == 0 {
		limit = DefaultPlanCacheSize
	}
	return &planCache{
		m:     make(map[planKey]*planEntry),
		norms: make(map[string]normEntry),
		limit: limit,
	}
}

// planCacheKey derives the cache key for a job input. ok is false when the
// script does not lex (the parse path will report the real error) — or when
// the cache is disabled.
func (c *planCache) planCacheKey(in workload.JobInput) (planKey, bool) {
	if c == nil {
		return planKey{}, false
	}
	norm, ok := c.normalize(in.Script)
	if !ok {
		return planKey{}, false
	}
	return planKey{runtime: in.Runtime, norm: norm, params: fingerprintParams(in.Params)}, true
}

// normalize returns the memoized token normalization of src. The memo is
// bounded at a small multiple of the entry limit; on overflow it resets
// wholesale (the population of distinct raw scripts in a recurring workload
// is small, so a reset just re-lexes each live script once).
func (c *planCache) normalize(src string) (string, bool) {
	c.normMu.Lock()
	if e, hit := c.norms[src]; hit {
		c.normMu.Unlock()
		return e.norm, e.ok
	}
	c.normMu.Unlock()
	norm, ok := sqlparser.NormalizeScript(src)
	c.normMu.Lock()
	if len(c.norms) >= 4*c.limit {
		c.norms = make(map[string]normEntry)
	}
	c.norms[src] = normEntry{norm: norm, ok: ok}
	c.normMu.Unlock()
	return norm, ok
}

// fingerprintParams renders parameter bindings deterministically. Kind and
// value are both significant (Int(1) vs String("1") bind differently).
func fingerprintParams(params map[string]data.Value) string {
	if len(params) == 0 {
		return ""
	}
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		v := params[n]
		sb.WriteString(strconv.Itoa(len(n)))
		sb.WriteByte(':')
		sb.WriteString(n)
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(int(v.Kind)))
		sb.WriteByte(':')
		s := v.String()
		sb.WriteString(strconv.Itoa(len(s)))
		sb.WriteByte(':')
		sb.WriteString(s)
	}
	return sb.String()
}

func (c *planCache) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *planCache) pushFront(e *planEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// lookup returns the entry for key if it was built against generation gen.
// A stale entry is dropped eagerly so the subsequent store replaces it.
func (c *planCache) lookup(key planKey, gen uint64) *planEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil
	}
	if e.gen != gen {
		c.unlink(e)
		delete(c.m, key)
		return nil
	}
	c.unlink(e)
	c.pushFront(e)
	return e
}

// storeBound records a freshly bound root for key (level 1). First writer
// wins under races; the loser's entry is simply not installed.
func (c *planCache) storeBound(key planKey, gen uint64, root plan.Node) *planEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok && e.gen == gen {
		c.unlink(e)
		c.pushFront(e)
		return e
	}
	e := &planEntry{gen: gen, root: root, key: key}
	if old, ok := c.m[key]; ok {
		c.unlink(old)
	}
	c.m[key] = e
	c.pushFront(e)
	for len(c.m) > c.limit && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		delete(c.m, victim.key)
	}
	return e
}

// storeCompiled attaches the level-2 compile product to an entry,
// overwriting any previous one: a newer product embeds estimates computed
// against newer history, which is what the hit-time estimate guard will be
// compared against — keeping an older product would wedge the entry in a
// permanent guard miss once history moves.
func (c *planCache) storeCompiled(e *planEntry, cp *compiledPlan) {
	if c == nil || e == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e.compiled = cp
}

// stats returns cumulative full-compile cache hits and misses (level 2).
func (c *planCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
