package core_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/core"
	"cloudviews/internal/data"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/workload"
)

// The concurrency stress suite: N goroutines submit M recurring jobs across
// four virtual clusters and the results must be byte-identical to running
// the very same jobs serially on an identical engine. Reuse hit counts may
// legitimately differ WHILE views are being built (a view seals at a
// simulated time, and concurrent submission can observe a later clock than
// serial), but once every view is sealed the counts must converge exactly.
// Run under `go test -race` this doubles as the data-race gate for the
// whole submission pipeline.

var stressVCs = []string{"vc-a", "vc-b", "vc-c", "vc-d"}

// stressTemplates are the recurring scripts. Each parameterizes to the same
// strict signature on every submission, so repeated runs are view-reuse
// candidates (the paper's recurring-job pattern).
var stressTemplates = []string{
	`p = SELECT * FROM Events WHERE Value > 40;
	 r = SELECT Region, COUNT(*) AS n, SUM(Value) AS s FROM p GROUP BY Region;
	 OUTPUT r TO "out/a";`,
	`p = SELECT * FROM Events WHERE Value > 40;
	 q = SELECT Id, Value * 2.0 AS v2 FROM p;
	 OUTPUT q TO "out/b";`,
	`j = SELECT e.Region AS Region, e.Value AS Value, d.Weight AS Weight
	     FROM Events AS e JOIN Dims AS d ON e.Region = d.Region;
	 r = SELECT Region, SUM(Value) AS sv, MAX(Weight) AS mw FROM j GROUP BY Region;
	 OUTPUT r TO "out/c";`,
}

// stressWorld builds one engine over a deterministic two-table catalog. Both
// the serial baseline and the concurrent engine call this with the same
// inputs, so they start bit-for-bit identical.
func stressWorld(t *testing.T) *core.Engine {
	t.Helper()
	cat := catalog.New()
	events := data.Schema{
		{Name: "Id", Kind: data.KindInt},
		{Name: "Region", Kind: data.KindString},
		{Name: "Value", Kind: data.KindFloat},
	}
	dims := data.Schema{
		{Name: "Region", Kind: data.KindString},
		{Name: "Weight", Kind: data.KindFloat},
	}
	if _, err := cat.Define("Events", events); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Define("Dims", dims); err != nil {
		t.Fatal(err)
	}
	regions := []string{"us", "eu", "asia", "latam", "mea"}
	tb := data.NewTable(events)
	for i := 0; i < 3000; i++ {
		tb.Append(data.Row{
			data.Int(int64(i)),
			data.String_(regions[i%len(regions)]),
			data.Float(float64((i * 37) % 97)),
		})
	}
	if _, err := cat.BulkUpdate("Events", fixtures.Epoch, tb); err != nil {
		t.Fatal(err)
	}
	db := data.NewTable(dims)
	for i, r := range regions {
		db.Append(data.Row{data.String_(r), data.Float(float64(i) + 0.5)})
	}
	if _, err := cat.BulkUpdate("Dims", fixtures.Epoch, db); err != nil {
		t.Fatal(err)
	}
	cat.SetScaleFactor("Events", 50_000)
	eng := core.NewEngine(core.Config{
		ClusterName: "stress",
		Catalog:     cat,
		ClusterCfg:  cluster.Config{Capacity: 400},
		Selection:   analysis.SelectionConfig{UseBigSubs: true},
	})
	for _, vc := range stressVCs {
		eng.OnboardVC(vc)
	}
	return eng
}

// stressJobs builds one round of recurring jobs: `repeats` submissions of
// every template on every VC, with submit times spread inside a one-hour
// window starting at base. Job IDs and submit times are deterministic, so
// two engines given the same round see exactly the same inputs.
func stressJobs(round string, base time.Time, repeats int) []workload.JobInput {
	var jobs []workload.JobInput
	i := 0
	for rep := 0; rep < repeats; rep++ {
		for vi, vc := range stressVCs {
			for ti, script := range stressTemplates {
				jobs = append(jobs, workload.JobInput{
					ID:       fmt.Sprintf("%s-%s-t%d-r%d", round, vc, ti, rep),
					Cluster:  "stress",
					VC:       vc,
					Pipeline: fmt.Sprintf("pipe-%d", ti),
					Runtime:  "scope-r1",
					Script:   script,
					Submit:   base.Add(time.Duration(i*7+vi) * time.Second),
					OptIn:    true,
				})
				i++
			}
		}
	}
	return jobs
}

// runSerial executes jobs in slice order on one goroutine.
func runSerial(t *testing.T, eng *core.Engine, jobs []workload.JobInput) map[string]*core.JobRun {
	t.Helper()
	out := make(map[string]*core.JobRun, len(jobs))
	for _, in := range jobs {
		run, err := eng.CompileAndExecute(in)
		if err != nil {
			t.Fatalf("serial %s: %v", in.ID, err)
		}
		out[in.ID] = run
	}
	return out
}

// runConcurrent executes jobs with `workers` goroutines pulling from a
// deterministically shuffled queue, so the submission interleaving bears no
// resemblance to the serial order.
func runConcurrent(t *testing.T, eng *core.Engine, jobs []workload.JobInput, workers int, shuffleSeed int64) map[string]*core.JobRun {
	t.Helper()
	shuffled := make([]workload.JobInput, len(jobs))
	copy(shuffled, jobs)
	rng := rand.New(rand.NewSource(shuffleSeed))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	ch := make(chan workload.JobInput)
	var mu sync.Mutex
	out := make(map[string]*core.JobRun, len(jobs))
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for in := range ch {
				run, err := eng.CompileAndExecute(in)
				if err != nil {
					errCh <- fmt.Errorf("concurrent %s: %w", in.ID, err)
					return
				}
				mu.Lock()
				out[in.ID] = run
				mu.Unlock()
			}
		}()
	}
	for _, in := range shuffled {
		ch <- in
	}
	close(ch)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return out
}

func TestConcurrentSubmissionMatchesSerial(t *testing.T) {
	serialEng := stressWorld(t)
	concEng := stressWorld(t)

	// Phase 0 (both engines, serial, identical): record the recurring
	// workload and run the feedback loop so both engines carry the same
	// view-selection annotations.
	prime := stressJobs("prime", fixtures.Epoch, 3)
	runSerial(t, serialEng, prime)
	runSerial(t, concEng, prime)
	window := fixtures.Epoch.Add(-time.Hour)
	wEnd := fixtures.Epoch.Add(24 * time.Hour)
	serialEng.RunAnalysis(window, wEnd)
	concEng.RunAnalysis(window, wEnd)

	// Phase 1: the same round of recurring jobs, serial vs 8-way concurrent
	// in scrambled order. Views get built during this round, so reuse
	// TIMING may differ — but every job's output must be byte-identical
	// (equal strict signatures imply equal bytes; reuse can change cost,
	// never answers).
	round1 := stressJobs("r1", fixtures.Epoch.Add(2*time.Hour), 4)
	sr1 := runSerial(t, serialEng, round1)
	cr1 := runConcurrent(t, concEng, round1, 8, 42)
	for _, in := range round1 {
		s, c := sr1[in.ID], cr1[in.ID]
		if sf, cf := s.Output.Fingerprint(), c.Output.Fingerprint(); sf != cf {
			t.Errorf("round1 %s: output diverges from serial baseline", in.ID)
		}
	}

	// Phase 2: one hour later every view proposed in round 1 has sealed on
	// both engines, so reuse decisions are no longer timing-dependent: hit
	// counts must converge EXACTLY, job by job.
	round2 := stressJobs("r2", fixtures.Epoch.Add(4*time.Hour), 2)
	sr2 := runSerial(t, serialEng, round2)
	cr2 := runConcurrent(t, concEng, round2, 8, 1042)
	var serialHits, concHits int
	for _, in := range round2 {
		s, c := sr2[in.ID], cr2[in.ID]
		if sf, cf := s.Output.Fingerprint(), c.Output.Fingerprint(); sf != cf {
			t.Errorf("round2 %s: output diverges from serial baseline", in.ID)
		}
		if sm, cm := len(s.Compile.Matched), len(c.Compile.Matched); sm != cm {
			t.Errorf("round2 %s: reuse hits did not converge: serial=%d concurrent=%d", in.ID, sm, cm)
		}
		serialHits += len(s.Compile.Matched)
		concHits += len(c.Compile.Matched)
	}
	if serialHits == 0 {
		t.Error("round2 produced no reuse at all — priming is broken and the convergence assertion is vacuous")
	}
	if serialHits != concHits {
		t.Errorf("round2 total reuse hits: serial=%d concurrent=%d", serialHits, concHits)
	}

	// The repositories saw the same jobs (in different orders).
	if s, c := serialEng.Repo.Len(), concEng.Repo.Len(); s != c {
		t.Errorf("repository sizes diverge: serial=%d concurrent=%d", s, c)
	}
}

// TestConcurrentMixedVCAdmin races submissions against VC offboarding and
// dataset rescaling — admin-plane calls that mutate shared state mid-flight.
// There is no equivalence baseline here; the assertion is "no race, no
// crash, every surviving job still answers correctly for its inputs".
func TestConcurrentMixedVCAdmin(t *testing.T) {
	eng := stressWorld(t)
	jobs := stressJobs("mix", fixtures.Epoch, 6)

	var wg sync.WaitGroup
	ch := make(chan workload.JobInput)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for in := range ch {
				if _, err := eng.CompileAndExecute(in); err != nil {
					t.Errorf("%s: %v", in.ID, err)
				}
			}
		}()
	}
	// Admin goroutine: rescale datasets and toggle a VC while jobs fly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			eng.Catalog.SetScaleFactor("Events", float64(10_000*(i%5+1)))
			if i%10 == 9 {
				eng.OffboardVC("vc-d")
				eng.OnboardVC("vc-d")
			}
		}
	}()
	for _, in := range jobs {
		ch <- in
	}
	close(ch)
	wg.Wait()

	if eng.Repo.Len() != len(jobs) {
		t.Errorf("repo has %d jobs, want %d", eng.Repo.Len(), len(jobs))
	}
}
