package core_test

import (
	"testing"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/core"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/workload"
)

// smallProfile is a fast test-sized cluster.
func smallProfile() workload.ClusterProfile {
	p := workload.DefaultProfile("TestC")
	p.Pipelines = 12
	p.RawStreams = 4
	p.CookedDatasets = 5
	p.DimTables = 2
	p.PrefixPool = 8
	p.RowsPerRawDay = 150
	p.VCs = 2
	return p
}

func newSystem(t *testing.T) (*core.Engine, *workload.Generator) {
	t.Helper()
	cat := catalog.New()
	gen := workload.NewGenerator(cat, smallProfile())
	if err := gen.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	var vcCfgs []cluster.VCConfig
	for _, vc := range gen.VCNames() {
		vcCfgs = append(vcCfgs, cluster.VCConfig{Name: vc, Tokens: 60})
	}
	eng := core.NewEngine(core.Config{
		ClusterName: "TestC",
		Catalog:     cat,
		ClusterCfg:  cluster.Config{Capacity: 400, VCs: vcCfgs},
		Selection:   analysis.SelectionConfig{ScheduleAware: true, UseBigSubs: true},
	})
	return eng, gen
}

func TestRunDayBaseline(t *testing.T) {
	eng, gen := newSystem(t)
	jobs := gen.JobsForDay(0)
	if len(jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	m, err := eng.RunDay(0, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs != len(jobs) {
		t.Errorf("jobs = %d, want %d", m.Jobs, len(jobs))
	}
	if m.LatencySec <= 0 || m.ProcessingSec <= 0 || m.Containers <= 0 {
		t.Errorf("metrics not populated: %+v", m)
	}
	if m.ViewsBuilt != 0 || m.ViewsReused != 0 {
		t.Errorf("no VC onboarded: views built=%d reused=%d", m.ViewsBuilt, m.ViewsReused)
	}
	if eng.Repo.Len() != len(jobs) {
		t.Errorf("repo records = %d", eng.Repo.Len())
	}
	if eng.Repo.SubexprCount() == 0 {
		t.Error("no subexpressions recorded")
	}
}

func TestCookingPublishesDatasets(t *testing.T) {
	eng, gen := newSystem(t)
	before := eng.Catalog.VersionCount("TestC_Cooked00")
	if _, err := eng.RunDay(0, gen.JobsForDay(0)); err != nil {
		t.Fatal(err)
	}
	after := eng.Catalog.VersionCount("TestC_Cooked00")
	if after <= before {
		t.Errorf("cooking job did not publish a new version: %d -> %d", before, after)
	}
}

func TestFeedbackLoopProducesReuse(t *testing.T) {
	eng, gen := newSystem(t)
	for _, vc := range gen.VCNames() {
		eng.OnboardVC(vc)
	}
	var totalBuilt, totalReused int
	for day := 0; day < 3; day++ {
		if day > 0 {
			if err := gen.AdvanceDay(day); err != nil {
				t.Fatal(err)
			}
		}
		m, err := eng.RunDay(day, gen.JobsForDay(day))
		if err != nil {
			t.Fatal(err)
		}
		totalBuilt += m.ViewsBuilt
		totalReused += m.ViewsReused
		// Nightly analysis over the trailing window.
		from := fixtures.Epoch.AddDate(0, 0, day-7)
		to := fixtures.Epoch.AddDate(0, 0, day+1)
		tags, _ := eng.RunAnalysis(from, to)
		if day == 0 && tags == 0 {
			t.Error("analysis selected nothing on a workload with built-in overlap")
		}
	}
	if totalBuilt == 0 {
		t.Error("no views built across 3 days with feedback loop")
	}
	if totalReused == 0 {
		t.Error("no views reused across 3 days with feedback loop")
	}
	if totalReused <= totalBuilt {
		t.Errorf("expected more reuses (%d) than builds (%d)", totalReused, totalBuilt)
	}
}

func TestReuseImprovesProcessingTime(t *testing.T) {
	// Two identical worlds; one with CloudViews onboarded.
	runWorld := func(enable bool) (baseline, final core.DayMetrics) {
		cat := catalog.New()
		gen := workload.NewGenerator(cat, smallProfile())
		if err := gen.Bootstrap(); err != nil {
			t.Fatal(err)
		}
		var vcCfgs []cluster.VCConfig
		for _, vc := range gen.VCNames() {
			vcCfgs = append(vcCfgs, cluster.VCConfig{Name: vc, Tokens: 60})
		}
		eng := core.NewEngine(core.Config{
			ClusterName: "TestC",
			Catalog:     cat,
			ClusterCfg:  cluster.Config{Capacity: 400, VCs: vcCfgs},
			Selection:   analysis.SelectionConfig{ScheduleAware: true, UseBigSubs: true},
		})
		if enable {
			for _, vc := range gen.VCNames() {
				eng.OnboardVC(vc)
			}
		}
		var first, last core.DayMetrics
		for day := 0; day < 3; day++ {
			if day > 0 {
				if err := gen.AdvanceDay(day); err != nil {
					t.Fatal(err)
				}
			}
			m, err := eng.RunDay(day, gen.JobsForDay(day))
			if err != nil {
				t.Fatal(err)
			}
			if day == 0 {
				first = m
			}
			last = m
			eng.RunAnalysis(fixtures.Epoch.AddDate(0, 0, day-7), fixtures.Epoch.AddDate(0, 0, day+1))
		}
		return first, last
	}
	_, offLast := runWorld(false)
	_, onLast := runWorld(true)

	if onLast.ProcessingSec >= offLast.ProcessingSec {
		t.Errorf("CloudViews processing %.0f should beat baseline %.0f",
			onLast.ProcessingSec, offLast.ProcessingSec)
	}
	if onLast.DataReadBytes >= offLast.DataReadBytes {
		t.Errorf("CloudViews data read %d should beat baseline %d",
			onLast.DataReadBytes, offLast.DataReadBytes)
	}
	if onLast.Containers >= offLast.Containers {
		t.Errorf("CloudViews containers %d should beat baseline %d",
			onLast.Containers, offLast.Containers)
	}
}

func TestReuseDoesNotChangeResults(t *testing.T) {
	// The same job must produce identical output with and without reuse.
	mk := func(enable bool) map[string]string {
		cat := catalog.New()
		gen := workload.NewGenerator(cat, smallProfile())
		if err := gen.Bootstrap(); err != nil {
			t.Fatal(err)
		}
		eng := core.NewEngine(core.Config{
			ClusterName: "TestC",
			Catalog:     cat,
			ClusterCfg:  cluster.Config{Capacity: 400},
		})
		if enable {
			for _, vc := range gen.VCNames() {
				eng.OnboardVC(vc)
			}
		}
		outputs := make(map[string]string)
		for day := 0; day < 2; day++ {
			if day > 0 {
				if err := gen.AdvanceDay(day); err != nil {
					t.Fatal(err)
				}
			}
			jobs := gen.JobsForDay(day)
			for _, in := range jobs {
				run, err := eng.CompileAndExecute(in)
				if err != nil {
					t.Fatalf("%s: %v", in.ID, err)
				}
				if !in.Cooking { // cooking outputs include nondeterministic-free data, compare those too
					outputs[in.ID] = run.Output.Fingerprint()
				} else {
					outputs[in.ID] = run.Output.Fingerprint()
				}
			}
			eng.RunAnalysis(fixtures.Epoch.AddDate(0, 0, -7), fixtures.Epoch.AddDate(0, 0, day+1))
		}
		return outputs
	}
	off := mk(false)
	on := mk(true)
	if len(off) != len(on) {
		t.Fatalf("job counts differ: %d vs %d", len(off), len(on))
	}
	diff := 0
	for id, fp := range off {
		if on[id] != fp {
			diff++
			if diff <= 3 {
				t.Errorf("job %s output differs under reuse", id)
			}
		}
	}
	if diff > 0 {
		t.Fatalf("%d/%d jobs differ", diff, len(off))
	}
}

func TestOffboardPurgesViews(t *testing.T) {
	eng, gen := newSystem(t)
	for _, vc := range gen.VCNames() {
		eng.OnboardVC(vc)
	}
	if _, err := eng.RunDay(0, gen.JobsForDay(0)); err != nil {
		t.Fatal(err)
	}
	eng.RunAnalysis(fixtures.Epoch.AddDate(0, 0, -1), fixtures.Epoch.AddDate(0, 0, 1))
	if err := gen.AdvanceDay(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunDay(1, gen.JobsForDay(1)); err != nil {
		t.Fatal(err)
	}
	vc := gen.VCNames()[0]
	eng.OffboardVC(vc)
	if eng.Store.UsedBytes(vc) != 0 {
		t.Errorf("offboarded VC still holds %d view bytes", eng.Store.UsedBytes(vc))
	}
}

func TestRuntimeVersionsSegmentReuse(t *testing.T) {
	eng, _ := newSystem(t)
	// Same script compiled under two runtimes must produce different
	// templates (and therefore never share views).
	in := workload.JobInput{
		ID: "a", Cluster: "TestC", VC: "TestC-vc00", Pipeline: "p", User: "u",
		Runtime: "scope-r1",
		Script:  `res = SELECT Region, COUNT(*) AS n FROM TestC_Cooked00 GROUP BY Region; OUTPUT res TO "out/a";`,
		Submit:  fixtures.Epoch.Add(2 * time.Hour),
		OptIn:   true,
	}
	runA, err := eng.CompileAndExecute(in)
	if err != nil {
		t.Fatal(err)
	}
	in2 := in
	in2.ID = "b"
	in2.Runtime = "scope-r2"
	runB, err := eng.CompileAndExecute(in2)
	if err != nil {
		t.Fatal(err)
	}
	if runA.Record.Template == runB.Record.Template {
		t.Error("different runtimes must produce different signatures")
	}
}

// TestRunDayDeterministic: two fresh worlds with identical seeds must produce
// bit-identical day metrics — the experiments' A/B comparisons depend on it.
func TestRunDayDeterministic(t *testing.T) {
	runOnce := func() core.DayMetrics {
		cat := catalog.New()
		gen := workload.NewGenerator(cat, smallProfile())
		if err := gen.Bootstrap(); err != nil {
			t.Fatal(err)
		}
		eng := core.NewEngine(core.Config{
			ClusterName: "TestC",
			Catalog:     cat,
			ClusterCfg:  cluster.Config{Capacity: 400},
		})
		m, err := eng.RunDay(0, gen.JobsForDay(0))
		if err != nil {
			t.Fatal(err)
		}
		m.JobLatencies = nil // slice identity irrelevant
		return m
	}
	a, b := runOnce(), runOnce()
	if a.Jobs != b.Jobs || a.LatencySec != b.LatencySec || a.ProcessingSec != b.ProcessingSec ||
		a.Containers != b.Containers || a.InputBytes != b.InputBytes ||
		a.DataReadBytes != b.DataReadBytes || a.QueueLen != b.QueueLen {
		t.Errorf("day metrics differ:\n%+v\n%+v", a, b)
	}
}
