package core_test

import (
	"fmt"
	"testing"
	"time"

	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/core"
	"cloudviews/internal/data"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/workload"
)

const pcScript = `p = SELECT * FROM Events WHERE Value > 10;
r = SELECT Region, COUNT(*) AS n, SUM(Value) AS s FROM p GROUP BY Region;
OUTPUT r TO "out/r";`

func pcEngine(t *testing.T, cfg core.Config) *core.Engine {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = catalog.New()
	}
	if cfg.ClusterName == "" {
		cfg.ClusterName = "pc-test"
	}
	cfg.ClusterCfg = cluster.Config{Capacity: 100}
	e := core.NewEngine(cfg)
	schema := data.Schema{
		{Name: "Id", Kind: data.KindInt},
		{Name: "Region", Kind: data.KindString},
		{Name: "Value", Kind: data.KindFloat},
	}
	if _, err := e.Catalog.Define("Events", schema); err != nil {
		t.Fatal(err)
	}
	tb := data.NewTable(schema)
	regions := []string{"us", "eu", "asia"}
	for i := 0; i < 300; i++ {
		tb.Append(data.Row{
			data.Int(int64(i)), data.String_(regions[i%3]), data.Float(float64(i % 50)),
		})
	}
	if _, err := e.Catalog.BulkUpdate("Events", fixtures.Epoch, tb); err != nil {
		t.Fatal(err)
	}
	return e
}

func pcInput(id, script string) workload.JobInput {
	return workload.JobInput{
		ID: id, Cluster: "pc-test", VC: "vc-off", Pipeline: "p", Runtime: "scope-r1",
		Script: script, Submit: fixtures.Epoch, OptIn: true,
	}
}

// TestPlanCacheHitMatchesMiss runs the same reuse-disabled submission
// sequence through a cached engine and a cache-disabled twin: every run must
// produce a byte-identical output table and an identical trace render, and
// the cached engine must actually take hits once history converges.
func TestPlanCacheHitMatchesMiss(t *testing.T) {
	cachedEng := pcEngine(t, core.Config{})
	plainEng := pcEngine(t, core.Config{PlanCacheSize: -1})
	for i := 0; i < 4; i++ {
		in := pcInput(fmt.Sprintf("j%d", i), pcScript)
		cr, err := cachedEng.CompileAndExecute(in)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := plainEng.CompileAndExecute(in)
		if err != nil {
			t.Fatal(err)
		}
		if cr.Output.Fingerprint() != pr.Output.Fingerprint() {
			t.Fatalf("run %d: cached output differs from uncached", i)
		}
		if ct, pt := cr.Trace.Render(), pr.Trace.Render(); ct != pt {
			t.Fatalf("run %d: cached trace differs from uncached:\ncached:\n%s\nplain:\n%s", i, ct, pt)
		}
	}
	hits, misses := cachedEng.PlanCacheStats()
	if hits == 0 {
		t.Fatalf("no plan cache hits after 4 identical submissions (misses=%d)", misses)
	}
}

// TestPlanCacheInvalidatedByCatalogChange publishes a new dataset version
// between submissions: the cached plan must not serve stale bindings, and the
// output must reflect the new data.
func TestPlanCacheInvalidatedByCatalogChange(t *testing.T) {
	e := pcEngine(t, core.Config{})
	for i := 0; i < 3; i++ {
		if _, err := e.CompileAndExecute(pcInput(fmt.Sprintf("warm%d", i), pcScript)); err != nil {
			t.Fatal(err)
		}
	}
	gen := e.Catalog.Generation()
	schema := data.Schema{
		{Name: "Id", Kind: data.KindInt},
		{Name: "Region", Kind: data.KindString},
		{Name: "Value", Kind: data.KindFloat},
	}
	tb := data.NewTable(schema)
	tb.Append(data.Row{data.Int(1), data.String_("mars"), data.Float(99)})
	if _, err := e.Catalog.BulkUpdate("Events", fixtures.Epoch.Add(time.Hour), tb); err != nil {
		t.Fatal(err)
	}
	if e.Catalog.Generation() == gen {
		t.Fatal("BulkUpdate did not bump the catalog generation")
	}
	run, err := e.CompileAndExecute(pcInput("after-update", pcScript))
	if err != nil {
		t.Fatal(err)
	}
	if n := run.Output.NumRows(); n != 1 {
		t.Fatalf("post-update output has %d rows, want 1 (the mars row)", n)
	}
	if got := run.Output.Rows[0][0].S; got != "mars" {
		t.Fatalf("post-update region = %q, want mars", got)
	}
}

// TestPlanCacheSkipsReuseEnabledJobs verifies the level-2 cache never serves
// jobs for which CloudViews is enabled — their compilation depends on the
// view store and insights state, which move between submissions.
func TestPlanCacheSkipsReuseEnabledJobs(t *testing.T) {
	e := pcEngine(t, core.Config{})
	e.OnboardVC("vc-on")
	in := pcInput("on-1", pcScript)
	in.VC = "vc-on"
	for i := 0; i < 4; i++ {
		in.ID = fmt.Sprintf("on-%d", i)
		run, err := e.CompileAndExecute(in)
		if err != nil {
			t.Fatal(err)
		}
		if !run.Compile.ReuseEnabled {
			t.Fatal("expected reuse enabled for onboarded VC")
		}
	}
	if hits, _ := e.PlanCacheStats(); hits != 0 {
		t.Fatalf("reuse-enabled submissions took %d plan-cache hits, want 0", hits)
	}

	// Flipping the controls off after a full compile must not expose a stale
	// product either: the first disabled submission recompiles (the enabled
	// runs never stored one), then subsequent ones may hit.
	e.OffboardVC("vc-on")
	for i := 0; i < 3; i++ {
		in.ID = fmt.Sprintf("off-%d", i)
		run, err := e.CompileAndExecute(in)
		if err != nil {
			t.Fatal(err)
		}
		if run.Compile.ReuseEnabled {
			t.Fatal("expected reuse disabled after offboarding")
		}
	}
}

// TestPlanCacheDisabled pins the off switch: PlanCacheSize < 0 must record
// neither hits nor misses and still execute correctly.
func TestPlanCacheDisabled(t *testing.T) {
	e := pcEngine(t, core.Config{PlanCacheSize: -1})
	for i := 0; i < 3; i++ {
		if _, err := e.CompileAndExecute(pcInput(fmt.Sprintf("d%d", i), pcScript)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := e.PlanCacheStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("disabled cache recorded hits=%d misses=%d, want 0/0", hits, misses)
	}
}

// TestPlanCacheNormalizesScripts verifies whitespace/comment/keyword-case
// variants of a script share one cache entry.
func TestPlanCacheNormalizesScripts(t *testing.T) {
	e := pcEngine(t, core.Config{})
	variant := `p = select * from Events where Value > 10;
-- a comment the lexer drops
r = SELECT   Region, COUNT(*) AS n, SUM(Value) AS s
    FROM p GROUP BY Region;
OUTPUT r TO "out/r";`
	base, err := e.CompileAndExecute(pcInput("base", pcScript))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		run, err := e.CompileAndExecute(pcInput(fmt.Sprintf("v%d", i), variant))
		if err != nil {
			t.Fatal(err)
		}
		if run.Output.Fingerprint() != base.Output.Fingerprint() {
			t.Fatal("variant output differs")
		}
	}
	hits, _ := e.PlanCacheStats()
	if hits == 0 {
		t.Fatal("normalized variants never hit the shared entry")
	}
}

// TestPlanCacheParamSensitivity verifies distinct parameter bindings never
// share a compiled plan.
func TestPlanCacheParamSensitivity(t *testing.T) {
	e := pcEngine(t, core.Config{})
	script := `r = SELECT Region, COUNT(*) AS n FROM Events WHERE Value > @lo GROUP BY Region;
OUTPUT r TO "out/r";`
	outputs := map[string]string{}
	for _, lo := range []float64{5, 45} {
		in := pcInput(fmt.Sprintf("p-%v", lo), script)
		in.Params = map[string]data.Value{"lo": data.Float(lo)}
		var last *core.JobRun
		for i := 0; i < 3; i++ {
			in.ID = fmt.Sprintf("p-%v-%d", lo, i)
			run, err := e.CompileAndExecute(in)
			if err != nil {
				t.Fatal(err)
			}
			last = run
		}
		outputs[fmt.Sprint(lo)] = last.Output.Fingerprint()
	}
	if outputs["5"] == outputs["45"] {
		t.Fatal("different parameter bindings produced identical outputs — key collision")
	}
}
