package core_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/core"
	"cloudviews/internal/data"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/insights"
	"cloudviews/internal/optimizer"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/sqlparser"
	"cloudviews/internal/workload"
)

// miniWorld builds an engine over a single hand-made dataset so lifecycle
// effects are easy to assert.
func miniWorld(t *testing.T) (*core.Engine, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New()
	schema := data.Schema{
		{Name: "Id", Kind: data.KindInt},
		{Name: "Region", Kind: data.KindString},
		{Name: "Value", Kind: data.KindFloat},
	}
	if _, err := cat.Define("Events", schema); err != nil {
		t.Fatal(err)
	}
	tb := data.NewTable(schema)
	for i := 0; i < 200; i++ {
		tb.Append(data.Row{
			data.Int(int64(i)),
			data.String_([]string{"us", "eu", "asia"}[i%3]),
			data.Float(float64(i % 89)),
		})
	}
	if _, err := cat.BulkUpdate("Events", fixtures.Epoch, tb); err != nil {
		t.Fatal(err)
	}
	cat.SetScaleFactor("Events", 50_000)
	eng := core.NewEngine(core.Config{
		ClusterName: "mini",
		Catalog:     cat,
		ClusterCfg:  cluster.Config{Capacity: 100},
		Selection:   analysis.SelectionConfig{UseBigSubs: true},
	})
	eng.OnboardVC("vc1")
	return eng, cat
}

const miniQuery = `p = SELECT * FROM Events WHERE Value > 40;
r = SELECT Region, COUNT(*) AS n FROM p GROUP BY Region;
OUTPUT r TO "out/r";`

// primeReuse runs the query enough times to select and materialize its view.
func primeReuse(t *testing.T, eng *core.Engine, clock *time.Time) {
	t.Helper()
	for i := 0; i < 3; i++ {
		submit(t, eng, fmt.Sprintf("prime-%d", i), clock)
	}
	eng.RunAnalysis(fixtures.Epoch.Add(-time.Hour), clock.Add(time.Hour))
	// Builder.
	submit(t, eng, "builder", clock)
}

func submit(t *testing.T, eng *core.Engine, id string, clock *time.Time) *core.JobRun {
	t.Helper()
	run, err := eng.CompileAndExecute(workload.JobInput{
		ID: id, Cluster: "mini", VC: "vc1", Pipeline: "p", Runtime: "r1",
		Script: miniQuery, Submit: *clock, OptIn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	*clock = clock.Add(time.Minute)
	return run
}

func TestBulkUpdateInvalidatesViews(t *testing.T) {
	eng, cat := miniWorld(t)
	clock := fixtures.Epoch
	primeReuse(t, eng, &clock)

	// Reuse works against the current version.
	if run := submit(t, eng, "reuser", &clock); len(run.Compile.Matched) != 1 {
		t.Fatalf("expected reuse before bulk update, matched=%d", len(run.Compile.Matched))
	}

	// Bulk update: new GUID. The old view no longer matches; the first job
	// on the new version rebuilds.
	ver, _ := cat.Latest("Events")
	if _, err := cat.BulkUpdate("Events", clock, ver.Table.Clone()); err != nil {
		t.Fatal(err)
	}
	run := submit(t, eng, "after-update", &clock)
	if len(run.Compile.Matched) != 0 {
		t.Error("stale view reused after bulk update")
	}
	if len(run.Compile.Proposed) != 1 {
		t.Errorf("expected rebuild on new version, proposed=%d", len(run.Compile.Proposed))
	}
	// And the next job reuses the fresh artifact.
	run2 := submit(t, eng, "after-update-2", &clock)
	if len(run2.Compile.Matched) != 1 {
		t.Error("fresh view not reused")
	}
}

func TestGDPRForgetInvalidatesViews(t *testing.T) {
	eng, cat := miniWorld(t)
	clock := fixtures.Epoch
	primeReuse(t, eng, &clock)

	ver, _ := cat.Latest("Events")
	// Forget request: drop user 7 and rotate the GUID.
	if _, err := cat.Forget(ver.GUID, clock, func(r data.Row) bool { return r[0].I != 7 }); err != nil {
		t.Fatal(err)
	}
	run := submit(t, eng, "post-forget", &clock)
	if len(run.Compile.Matched) != 0 {
		t.Error("view over forgotten data reused")
	}
	// Results must not contain the forgotten subject (indirectly: row counts
	// reflect the filtered version).
	if run.Exec.Table.NumRows() == 0 {
		t.Error("post-forget query returned nothing")
	}
}

func TestViewTTLExpiry(t *testing.T) {
	cat := catalog.New()
	schema := data.Schema{{Name: "Id", Kind: data.KindInt}, {Name: "Value", Kind: data.KindFloat}}
	_, _ = cat.Define("D", schema)
	tb := data.NewTable(schema)
	for i := 0; i < 100; i++ {
		tb.Append(data.Row{data.Int(int64(i)), data.Float(float64(i))})
	}
	_, _ = cat.BulkUpdate("D", fixtures.Epoch, tb)
	cat.SetScaleFactor("D", 50_000)

	eng := core.NewEngine(core.Config{
		ClusterName: "mini",
		Catalog:     cat,
		ClusterCfg:  cluster.Config{Capacity: 100},
		ViewTTL:     time.Hour, // short TTL for the test
	})
	eng.OnboardVC("vc1")
	clock := fixtures.Epoch
	q := `p = SELECT * FROM D WHERE Value > 10; r = SELECT COUNT(*) AS n FROM p GROUP BY Id HAVING n > 0; OUTPUT r TO "o";`
	sub := func(id string) *core.JobRun {
		run, err := eng.CompileAndExecute(workload.JobInput{
			ID: id, Cluster: "mini", VC: "vc1", Pipeline: "p", Runtime: "r1",
			Script: q, Submit: clock, OptIn: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		clock = clock.Add(5 * time.Minute)
		return run
	}
	sub("a")
	sub("b")
	eng.RunAnalysis(fixtures.Epoch.Add(-time.Hour), clock.Add(time.Hour))
	sub("builder")
	if run := sub("reuser"); len(run.Compile.Matched) != 1 {
		t.Fatalf("expected reuse within TTL")
	}
	// Jump past the TTL: the artifact expires; next job rebuilds.
	clock = clock.Add(2 * time.Hour)
	eng.SetClock(clock)
	eng.Store.GC()
	run := sub("late")
	if len(run.Compile.Matched) != 0 {
		t.Error("expired view reused")
	}
	if len(run.Compile.Proposed) == 0 {
		t.Error("expected rebuild after expiry")
	}
}

func TestAnnotationsFileDebugFlow(t *testing.T) {
	// §2.3: "in case of a customer incident, we can reproduce the compute
	// reuse behavior by compiling a job with the annotations file."
	eng, _ := miniWorld(t)
	clock := fixtures.Epoch
	primeReuse(t, eng, &clock)
	run := submit(t, eng, "probe", &clock)
	blob, err := eng.Insights.ExportAnnotationsFile(run.Compile.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(blob, string(run.Compile.Tag)) {
		t.Error("annotations file missing tag")
	}

	// A FRESH engine over the same catalog reproduces the reuse decisions
	// from the imported file alone (no workload analysis).
	eng2 := core.NewEngine(core.Config{
		ClusterName: "mini",
		Catalog:     eng.Catalog,
		ClusterCfg:  cluster.Config{Capacity: 100},
	})
	eng2.OnboardVC("vc1")
	if _, err := eng2.Insights.ImportAnnotationsFile(blob); err != nil {
		t.Fatal(err)
	}
	run2, err := eng2.CompileAndExecute(workload.JobInput{
		ID: "repro", Cluster: "mini", VC: "vc1", Pipeline: "p", Runtime: "r1",
		Script: miniQuery, Submit: clock, OptIn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run2.Compile.Proposed) != 1 {
		t.Errorf("imported annotations did not reproduce the build decision: %d", len(run2.Compile.Proposed))
	}
}

func TestConcurrentSubmissionCannotReuseUnsealedView(t *testing.T) {
	eng, _ := miniWorld(t)
	clock := fixtures.Epoch
	for i := 0; i < 3; i++ {
		submit(t, eng, fmt.Sprintf("w%d", i), &clock)
	}
	eng.RunAnalysis(fixtures.Epoch.Add(-time.Hour), clock.Add(time.Hour))

	// The builder runs; its view seals a bit after submission. A job
	// compiled one second later must neither rebuild (lock) nor reuse
	// (unsealed).
	builderSubmit := clock
	run1, err := eng.CompileAndExecute(workload.JobInput{
		ID: "builder", Cluster: "mini", VC: "vc1", Pipeline: "p", Runtime: "r1",
		Script: miniQuery, Submit: builderSubmit, OptIn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run1.Compile.Proposed) != 1 {
		t.Fatalf("builder did not build: %d", len(run1.Compile.Proposed))
	}
	run2, err := eng.CompileAndExecute(workload.JobInput{
		ID: "concurrent", Cluster: "mini", VC: "vc1", Pipeline: "p", Runtime: "r1",
		Script: miniQuery, Submit: builderSubmit.Add(time.Second), OptIn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run2.Compile.Matched) != 0 {
		t.Error("concurrent job reused an unsealed view")
	}
	if len(run2.Compile.Proposed) != 0 {
		t.Error("concurrent job rebuilt a locked view")
	}
	// Much later the view is sealed and reusable.
	late, err := eng.CompileAndExecute(workload.JobInput{
		ID: "late", Cluster: "mini", VC: "vc1", Pipeline: "p", Runtime: "r1",
		Script: miniQuery, Submit: builderSubmit.Add(2 * time.Hour), OptIn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(late.Compile.Matched) != 1 {
		t.Error("sealed view not reused later")
	}
}

func TestWorkloadDriftStopsMaterialization(t *testing.T) {
	// §2.4 just-in-time views: "if the workload changes and a selected
	// subexpression is no longer found in the workload then it will
	// automatically stop being materialized."
	eng, _ := miniWorld(t)
	clock := fixtures.Epoch
	primeReuse(t, eng, &clock)
	if run := submit(t, eng, "still-hot", &clock); len(run.Compile.Matched) != 1 {
		t.Fatal("reuse not primed")
	}

	// The workload drifts: a later analysis window contains only OTHER jobs.
	driftStart := clock
	other := `r = SELECT Region, MAX(Value) AS peak FROM Events GROUP BY Region; OUTPUT r TO "out/other";`
	for i := 0; i < 3; i++ {
		if _, err := eng.CompileAndExecute(workload.JobInput{
			ID: fmt.Sprintf("drift-%d", i), Cluster: "mini", VC: "vc1", Pipeline: "q", Runtime: "r1",
			Script: other, Submit: clock, OptIn: true,
		}); err != nil {
			t.Fatal(err)
		}
		clock = clock.Add(time.Minute)
	}
	eng.RunAnalysis(driftStart, clock.Add(time.Hour))

	// Past the view TTL, the old query's artifact is gone AND no new spool
	// is proposed: its annotations were dropped with the drift.
	clock = clock.Add(8 * 24 * time.Hour)
	eng.SetClock(clock)
	eng.Store.GC()
	run := submit(t, eng, "post-drift", &clock)
	if len(run.Compile.Matched) != 0 {
		t.Error("expired artifact reused")
	}
	if len(run.Compile.Proposed) != 0 {
		t.Errorf("drifted subexpression still materialized: %d spools", len(run.Compile.Proposed))
	}
}

// twoBranchBody has two independent recurring branches, so one job can stage
// TWO views at once — the shape that catches a failJob that only cleans up
// the first staged view.
const twoBranchBody = `a = SELECT * FROM Events WHERE Value > 40;
b = SELECT Region, COUNT(*) AS n FROM a GROUP BY Region;
c = SELECT * FROM Events WHERE Value < 20;
d = SELECT Region, COUNT(*) AS n FROM c GROUP BY Region;
r = SELECT * FROM b UNION ALL SELECT * FROM d;
`

// TestFailJobAbandonsEveryStagedView: a job that stages multiple views and
// then fails (here: publishing to an undefined cooked dataset) must abandon
// every staged view and release every creation lock — otherwise the failed
// job wedges those signatures for all later producers.
func TestFailJobAbandonsEveryStagedView(t *testing.T) {
	eng, cat := miniWorld(t)
	clock := fixtures.Epoch
	okScript := twoBranchBody + `OUTPUT r TO "out/two";`
	badScript := twoBranchBody + `OUTPUT r TO "dataset:Nope";`

	submitScript := func(id, script string) (*core.JobRun, error) {
		run, err := eng.CompileAndExecute(workload.JobInput{
			ID: id, Cluster: "mini", VC: "vc1", Pipeline: "p", Runtime: "r1",
			Script: script, Submit: clock, OptIn: true,
		})
		clock = clock.Add(time.Minute)
		return run, err
	}

	// Annotate both branch aggregates directly (bypassing nightly selection,
	// which would collapse them into one big-sub candidate): the compiler
	// looks up annotations by the job tag and proposes a spool per annotated
	// recurring signature, so the failing job stages TWO views.
	signer := &signature.Signer{EngineVersion: "mini/r1"}
	planFor := func(script string) plan.Node {
		t.Helper()
		parsed, err := sqlparser.Parse(script)
		if err != nil {
			t.Fatal(err)
		}
		binder := &plan.Binder{Catalog: cat}
		outs, err := binder.BindScript(parsed)
		if err != nil || len(outs) != 1 {
			t.Fatalf("bind: %v (%d outputs)", err, len(outs))
		}
		// The compiler tags and signs the rewritten plan, not the raw binding.
		return optimizer.Rewrite(plan.CloneNode(outs[0]))
	}
	annotate := func(script string) (signature.Tag, []insights.Annotation) {
		t.Helper()
		p := planFor(script)
		var anns []insights.Annotation
		for _, sub := range signer.Subexpressions(p) {
			if sub.Op != "Aggregate" || sub.Eligibility != signature.EligibleOK {
				continue
			}
			anns = append(anns, insights.Annotation{
				Recurring:     sub.Recurring,
				VC:            "vc1",
				ExpectedRows:  3,
				ExpectedBytes: 1 << 20,
				ExpectedWork:  100,
				Utility:       100,
			})
		}
		tag := signer.JobTag(p)
		eng.Insights.PublishAnnotations(tag, anns)
		return tag, anns
	}
	_, anns := annotate(badScript)
	tagOK, _ := annotate(okScript)
	if len(anns) != 2 {
		t.Fatalf("need 2 branch annotations to stage multiple views, got %d", len(anns))
	}

	// The failing job stages all annotated views, executes, then dies
	// publishing its cooked output.
	if _, err := submitScript("multi-fail", badScript); err == nil ||
		!strings.Contains(err.Error(), "publishing cooked dataset") {
		t.Fatalf("expected publish failure, got %v", err)
	}

	if n := eng.Insights.LockCount(); n != 0 {
		t.Errorf("failed job left %d view-creation locks held", n)
	}
	if n := eng.Store.PendingViews(); n != 0 {
		t.Errorf("failed job left %d staged views pending", n)
	}
	if n := eng.Store.Count(); n != 0 {
		t.Errorf("failed job sealed %d views", n)
	}
	if err := eng.Store.AuditBytes(); err != nil {
		t.Errorf("byte accounting inconsistent after failure: %v", err)
	}
	if b := eng.Store.UsedBytes("vc1"); b != 0 {
		t.Errorf("abandoned views still charge %d bytes", b)
	}

	// Every signature the failed job touched must be rebuildable: the next
	// producer acquires all the locks and stages all the views.
	rebuild, err := submitScript("rebuilder", okScript)
	if err != nil {
		t.Fatal(err)
	}
	annsOK, _ := eng.Insights.FetchAnnotations(tagOK)
	if len(rebuild.Compile.Proposed) != len(annsOK) {
		t.Fatalf("rebuilder proposed %d of %d views — a lock or artifact is wedged",
			len(rebuild.Compile.Proposed), len(annsOK))
	}
}
