package core_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/core"
	"cloudviews/internal/fault"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/workload"
)

// chaosDays is the simulated window each chaos scenario runs. Three days is
// enough for the full feedback loop (record → select → build → reuse) to
// engage under every fault mix.
const chaosDays = 3

// chaosEngine builds a generated-workload engine with an injector.
func chaosEngine(t *testing.T, fcfg fault.Config) (*core.Engine, *workload.Generator) {
	t.Helper()
	cat := catalog.New()
	gen := workload.NewGenerator(cat, smallProfile())
	if err := gen.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	var vcCfgs []cluster.VCConfig
	for _, vc := range gen.VCNames() {
		vcCfgs = append(vcCfgs, cluster.VCConfig{Name: vc, Tokens: 60})
	}
	eng := core.NewEngine(core.Config{
		ClusterName: "TestC",
		Catalog:     cat,
		ClusterCfg:  cluster.Config{Capacity: 400, VCs: vcCfgs},
		Selection:   analysis.SelectionConfig{ScheduleAware: true, UseBigSubs: true},
		Faults:      fcfg,
	})
	for _, vc := range gen.VCNames() {
		eng.OnboardVC(vc)
	}
	return eng, gen
}

// runChaosWindow runs the full pipeline for chaosDays with nightly analysis,
// checking the structural invariants after every day:
//   - RunDay never fails — injection can cost time, never correctness;
//   - no view-creation lock survives a day (every failure path released it);
//   - no staged view is left pending (every failure path abandoned it);
//   - the store's per-VC byte ledger stays consistent with its contents.
func runChaosWindow(t *testing.T, fcfg fault.Config) ([]core.DayMetrics, string) {
	t.Helper()
	eng, gen := chaosEngine(t, fcfg)
	var days []core.DayMetrics
	for day := 0; day < chaosDays; day++ {
		if day > 0 {
			if err := gen.AdvanceDay(day); err != nil {
				t.Fatal(err)
			}
		}
		jobs := gen.JobsForDay(day)
		m, err := eng.RunDay(day, jobs)
		if err != nil {
			t.Fatalf("day %d failed under faults (reuse must never fail a job): %v", day, err)
		}
		if m.Jobs != len(jobs) {
			t.Fatalf("day %d ran %d of %d jobs", day, m.Jobs, len(jobs))
		}
		if n := eng.Insights.LockCount(); n != 0 {
			t.Errorf("day %d left %d view-creation locks held", day, n)
		}
		if n := eng.Store.PendingViews(); n != 0 {
			t.Errorf("day %d left %d staged views pending", day, n)
		}
		if err := eng.Store.AuditBytes(); err != nil {
			t.Errorf("day %d byte ledger inconsistent: %v", day, err)
		}
		days = append(days, m)
		to := fixtures.Epoch.AddDate(0, 0, day+1)
		eng.RunAnalysis(to.Add(-7*24*time.Hour), to)
	}
	return days, eng.Metrics.ExportString()
}

// chaosMixes are the seeded fault scenarios the suite sweeps: each point
// alone at a aggressive rate, then everything at once.
var chaosMixes = []struct {
	name string
	cfg  fault.Config
}{
	{"stage", fault.Config{Seed: 11, Rates: map[fault.Point]float64{fault.StageFail: 0.3}}},
	{"preempt", fault.Config{Seed: 11, Rates: map[fault.Point]float64{fault.BonusPreempt: 0.3}}},
	{"spool", fault.Config{Seed: 11, Rates: map[fault.Point]float64{fault.SpoolWrite: 0.5}}},
	{"read", fault.Config{Seed: 11, Rates: map[fault.Point]float64{fault.ViewRead: 0.5}}},
	{"job", fault.Config{Seed: 11, Rates: map[fault.Point]float64{fault.JobFail: 0.5}, MaxJobAttempts: 3}},
	{"all", fault.Config{Seed: 11, Rates: map[fault.Point]float64{
		fault.StageFail: 0.15, fault.BonusPreempt: 0.15, fault.SpoolWrite: 0.25,
		fault.ViewRead: 0.25, fault.JobFail: 0.2,
	}, MaxJobAttempts: 3}},
}

// TestChaosInvariantsUnderFaultMixes sweeps every fault point (alone and
// combined) over the generated workload and checks the structural invariants
// after every simulated day.
func TestChaosInvariantsUnderFaultMixes(t *testing.T) {
	for _, mix := range chaosMixes {
		t.Run(mix.name, func(t *testing.T) {
			_, export := runChaosWindow(t, mix.cfg)
			// Each mix must actually exercise its fault path at these rates
			// (the injected-faults counter is created lazily, on the first
			// injection — its absence means the scenario was vacuous).
			if !strings.Contains(export, "cloudviews_faults_injected_total") {
				t.Errorf("mix %q injected nothing — the scenario is vacuous", mix.name)
			}
		})
	}
}

// TestChaosDeterministicReplay: the same seed must reproduce the whole
// faulted window byte for byte — per-day metrics (including per-job latency
// vectors) and the full metrics export.
func TestChaosDeterministicReplay(t *testing.T) {
	cfg := chaosMixes[len(chaosMixes)-1].cfg // the "all" mix
	daysA, exportA := runChaosWindow(t, cfg)
	daysB, exportB := runChaosWindow(t, cfg)
	if !reflect.DeepEqual(daysA, daysB) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", daysA, daysB)
	}
	if exportA != exportB {
		t.Fatal("same seed produced different metrics exports")
	}

	// A different seed must move the fault placement (over a 3-day window
	// at these rates, identical schedules would mean the seed is ignored).
	cfgC := cfg
	cfgC.Seed = 12
	daysC, _ := runChaosWindow(t, cfgC)
	if reflect.DeepEqual(daysA, daysC) {
		t.Fatal("different fault seeds produced identical windows")
	}
}

// TestChaosZeroRateMatchesFaultFree: a zero-value fault config must leave
// the engine byte-identical to one that never heard of fault injection —
// same day metrics, same metrics export. This is the faults-off overhead
// guarantee behind the golden-file stability of the CLI tools.
func TestChaosZeroRateMatchesFaultFree(t *testing.T) {
	daysOff, exportOff := runChaosWindow(t, fault.Config{})
	daysZero, exportZero := runChaosWindow(t, fault.Config{Seed: 99, Rates: map[fault.Point]float64{}})
	if !reflect.DeepEqual(daysOff, daysZero) {
		t.Fatal("zero-rate faults changed the schedule")
	}
	if exportOff != exportZero {
		t.Fatal("zero-rate faults changed the metrics export")
	}
	for _, d := range daysOff {
		if d.JobRetries+d.StageRetries+d.BonusPreemptions+d.ReuseFallbacks != 0 || d.FaultDelaySec != 0 {
			t.Fatalf("fault-free run reports fault activity: %+v", d)
		}
	}
}

// TestChaosLatencyBounded: chaos costs time, but boundedly — the faulted
// window's total latency must not exceed the clean window plus the charged
// recovery delay scaled by a queueing amplification factor. Retries hold
// tokens longer, so delayed jobs can queue behind each other; 3x the charged
// delay is a generous, deterministic ceiling (the runs are fully seeded).
func TestChaosLatencyBounded(t *testing.T) {
	clean, _ := runChaosWindow(t, fault.Config{})
	faulted, _ := runChaosWindow(t, fault.Config{
		Seed:  11,
		Rates: map[fault.Point]float64{fault.StageFail: 0.3, fault.BonusPreempt: 0.2},
	})
	var cleanLat, faultLat, faultDelay float64
	for i := range clean {
		cleanLat += clean[i].LatencySec
		faultLat += faulted[i].LatencySec
		faultDelay += faulted[i].FaultDelaySec
	}
	if faultLat < cleanLat {
		t.Errorf("faults made the window faster (%.1fs < %.1fs)?", faultLat, cleanLat)
	}
	if bound := cleanLat + 3*faultDelay + 1; faultLat > bound {
		t.Errorf("faulted latency %.1fs exceeds bound %.1fs (clean %.1fs + 3x delay %.1fs)",
			faultLat, bound, cleanLat, faultDelay)
	}
}
