package core_test

import (
	"strings"
	"testing"
	"time"

	"cloudviews/internal/cluster"
	"cloudviews/internal/core"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/obs"
	"cloudviews/internal/workload"
)

// TestJobTraceCoverage asserts the acceptance-level trace contract: a
// submitted job's trace covers parse→bind→insights→optimize→queue→execute
// (→materialize→seal for builders) and carries at least one view-decision
// event.
func TestJobTraceCoverage(t *testing.T) {
	eng, _ := miniWorld(t)
	clock := fixtures.Epoch
	for i := 0; i < 3; i++ {
		submit(t, eng, "prime-"+string(rune('a'+i)), &clock)
	}
	eng.RunAnalysis(fixtures.Epoch.Add(-time.Hour), clock.Add(time.Hour))

	builder := submit(t, eng, "builder", &clock)
	if builder.Trace == nil {
		t.Fatal("observability on by default: builder must carry a trace")
	}
	for _, span := range []string{"parse", "bind", "insights", "optimize", "queue", "execute", "materialize", "seal"} {
		if !builder.Trace.HasSpan(span) {
			t.Errorf("builder trace missing span %q:\n%s", span, builder.Trace.Render())
		}
	}
	if !hasEvent(builder.Trace.Events(), "view.proposed") {
		t.Errorf("builder trace has no view.proposed event:\n%s", builder.Trace.Render())
	}

	clock = clock.Add(2 * time.Hour) // past the seal point
	reuser := submit(t, eng, "reuser", &clock)
	if len(reuser.Compile.Matched) != 1 {
		t.Fatalf("reuse not primed, matched=%d", len(reuser.Compile.Matched))
	}
	for _, span := range []string{"parse", "bind", "insights", "optimize", "queue", "execute"} {
		if !reuser.Trace.HasSpan(span) {
			t.Errorf("reuser trace missing span %q:\n%s", span, reuser.Trace.Render())
		}
	}
	if !hasEvent(reuser.Trace.Events(), "view.matched") {
		t.Errorf("reuser trace has no view.matched event:\n%s", reuser.Trace.Render())
	}
	if r := reuser.Trace.Render(); !strings.Contains(r, "trace reuser") {
		t.Errorf("render missing job id:\n%s", r)
	}
}

func hasEvent(evs []obs.Event, kind string) bool {
	for _, e := range evs {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// TestMetricsExportDeterministic runs an identical serial workload on two
// fresh engines and requires byte-identical registry exports — the stable-
// ordering half of the observability acceptance criteria.
func TestMetricsExportDeterministic(t *testing.T) {
	export := func() string {
		eng, _ := miniWorld(t)
		clock := fixtures.Epoch
		primeReuse(t, eng, &clock)
		submit(t, eng, "reuser", &clock)
		return eng.Metrics.ExportString()
	}
	a, b := export(), export()
	if a != b {
		t.Fatalf("metrics export not deterministic:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	for _, want := range []string{
		"cloudviews_jobs_total 5",
		"cloudviews_views_created_total 1",
		"cloudviews_views_reused_total 1",
		"cloudviews_insights_fetches_total",
		`cloudviews_view_bytes{vc="vc1"}`,
	} {
		if !strings.Contains(a, want) {
			t.Errorf("export missing %q:\n%s", want, a)
		}
	}
}

// TestObservabilityDisabled pins the opt-out: no registry, no traces.
func TestObservabilityDisabled(t *testing.T) {
	eng, _ := miniWorld(t)
	dark := core.NewEngine(core.Config{
		ClusterName:          "mini",
		Catalog:              eng.Catalog,
		ClusterCfg:           cluster.Config{Capacity: 100},
		DisableObservability: true,
	})
	dark.OnboardVC("vc1")
	run, err := dark.CompileAndExecute(workload.JobInput{
		ID: "dark-1", Cluster: "mini", VC: "vc1", Pipeline: "p", Runtime: "r1",
		Script: miniQuery, Submit: fixtures.Epoch, OptIn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Trace != nil {
		t.Error("DisableObservability must suppress traces")
	}
	if dark.Metrics != nil {
		t.Error("DisableObservability must suppress the registry")
	}
	if dark.Telemetry != nil {
		t.Error("DisableObservability must suppress the telemetry collector")
	}
	if m, err := dark.RunDay(0, nil); err != nil {
		t.Fatal(err)
	} else if m.Alerts != nil {
		t.Error("disabled telemetry must surface no alerts")
	}
}

// TestExpiredViewRebuiltWithoutGC is the engine-level regression test for
// the blocked-signature bug: after TTL expiry and WITHOUT any GC() call the
// next job must rebuild the view, and the one after it must reuse it.
func TestExpiredViewRebuiltWithoutGC(t *testing.T) {
	eng, _ := miniWorld(t)
	eng.Store.SetTTL(time.Hour)
	clock := fixtures.Epoch
	primeReuse(t, eng, &clock)
	if run := submit(t, eng, "reuser", &clock); len(run.Compile.Matched) != 1 {
		t.Fatalf("reuse not primed, matched=%d", len(run.Compile.Matched))
	}

	// Past the TTL — deliberately no eng.Store.GC().
	clock = clock.Add(2 * time.Hour)
	eng.SetClock(clock)

	rebuilder := submit(t, eng, "rebuilder", &clock)
	if len(rebuilder.Compile.Matched) != 0 {
		t.Error("expired view reused")
	}
	if len(rebuilder.Compile.Proposed) != 1 {
		t.Fatalf("expired signature still blocked without GC: proposed=%d", len(rebuilder.Compile.Proposed))
	}
	// The rejection reason must be visible in the rebuilder's trace.
	found := false
	for _, ev := range rebuilder.Trace.Events() {
		if ev.Kind == "view.rejected" && strings.Contains(ev.Detail, "reason=expired") {
			found = true
		}
	}
	if !found {
		t.Errorf("no view.rejected reason=expired event:\n%s", rebuilder.Trace.Render())
	}

	clock = clock.Add(30 * time.Minute) // past the new seal point, within TTL
	if run := submit(t, eng, "reuser-2", &clock); len(run.Compile.Matched) != 1 {
		t.Error("rebuilt view not reused")
	}
}

// TestViewLockReleasedAfterJobFailure is the lock-lifecycle regression test:
// a job that acquires the view-creation lock, stages and materializes the
// view, and then FAILS (publishing its cooked output to an unknown dataset)
// must release both the half-built artifact and the lock, so the next job
// can build the view.
func TestViewLockReleasedAfterJobFailure(t *testing.T) {
	eng, _ := miniWorld(t)
	clock := fixtures.Epoch
	for i := 0; i < 3; i++ {
		submit(t, eng, "prime-"+string(rune('a'+i)), &clock)
	}
	eng.RunAnalysis(fixtures.Epoch.Add(-time.Hour), clock.Add(time.Hour))

	// Same logical query (the OUTPUT target is excluded from recurring
	// signatures, so this job shares the primed tag and gets the build
	// annotation) but its output publishes to an undefined dataset, which
	// fails AFTER execution — after the spool materialized.
	failing := `p = SELECT * FROM Events WHERE Value > 40;
r = SELECT Region, COUNT(*) AS n FROM p GROUP BY Region;
OUTPUT r TO "dataset:Nope";`
	_, err := eng.CompileAndExecute(workload.JobInput{
		ID: "doomed", Cluster: "mini", VC: "vc1", Pipeline: "p", Runtime: "r1",
		Script: failing, Submit: clock, OptIn: true,
	})
	if err == nil || !strings.Contains(err.Error(), "publishing cooked dataset") {
		t.Fatalf("expected cook failure, got %v", err)
	}
	clock = clock.Add(time.Minute)

	// The doomed job must have staged a view and abandoned it on failure.
	if st := eng.Store.Snapshot(); st.Abandoned != 1 {
		t.Fatalf("failed job did not abandon its view: %+v", st)
	}

	// Lock and signature must be free: the next job builds...
	rescuer := submit(t, eng, "rescuer", &clock)
	if len(rescuer.Compile.Proposed) != 1 {
		t.Fatalf("lock still wedged after job failure: proposed=%d", len(rescuer.Compile.Proposed))
	}
	// ...and later jobs reuse.
	clock = clock.Add(2 * time.Hour)
	if run := submit(t, eng, "reuser", &clock); len(run.Compile.Matched) != 1 {
		t.Error("view built by rescuer not reused")
	}

	if eng.Metrics.Counter("cloudviews_jobs_failed_total").Value() != 1 {
		t.Error("failed-jobs counter not bumped")
	}
	if eng.Metrics.Counter("cloudviews_views_abandoned_total").Value() != 1 {
		t.Error("abandoned-views counter not bumped")
	}
}
