// Package core wires the substrates into the CloudViews system: the engine
// that compiles, executes, and schedules jobs with reuse applied; the daily
// feedback loop (telemetry → workload analysis → view selection → annotation
// publishing → future compilations); and the metric collection behind the
// production-impact evaluation.
package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/data"
	"cloudviews/internal/exec"
	"cloudviews/internal/explain"
	"cloudviews/internal/fault"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/guard"
	"cloudviews/internal/insights"
	"cloudviews/internal/obs"
	"cloudviews/internal/optimizer"
	"cloudviews/internal/plan"
	"cloudviews/internal/repository"
	"cloudviews/internal/signature"
	"cloudviews/internal/sqlparser"
	"cloudviews/internal/stats"
	"cloudviews/internal/storage"
	"cloudviews/internal/telemetry"
	"cloudviews/internal/workload"
)

// Config assembles an Engine.
type Config struct {
	ClusterName string
	Catalog     *catalog.Catalog
	ClusterCfg  cluster.Config
	// ViewTTL overrides the 7-day default when non-zero.
	ViewTTL time.Duration
	// MaxViewsPerJob is the per-job spool cap (0 = optimizer default).
	MaxViewsPerJob int
	// Selection tunes the feedback loop's view selection.
	Selection analysis.SelectionConfig
	// Faults configures deterministic fault injection across the pipeline
	// (cluster stages, spool writes, view reads, whole-job crashes). The
	// zero value disables injection entirely at zero cost.
	Faults fault.Config
	// SLO tunes the telemetry watchdog thresholds (hit-rate regression,
	// per-VC storage budget, queue growth, fault spikes). The zero value is
	// a sane default that stays silent on healthy fault-free runs.
	SLO telemetry.SLOConfig
	// Guard configures the runtime guardrail subsystem (per-signature
	// circuit breakers, per-VC kill switch, policy flighting). The zero
	// value disables it entirely at zero cost.
	Guard guard.Config
	// StorageEngine plugs in an alternative view-store backend (e.g. the
	// file-backed durable engine). Nil keeps the default in-memory store.
	// If the engine is ClockAware the simulated clock is installed into it.
	StorageEngine storage.Engine
	// PlanCacheSize bounds the compiled-plan cache keyed by normalized
	// script: 0 = DefaultPlanCacheSize, negative = disabled.
	PlanCacheSize int
	// ResultCacheEntries bounds the shared subexpression result cache:
	// 0 = exec.DefaultCacheEntries, negative = unbounded.
	ResultCacheEntries int
	// DisableObservability turns off per-job traces, the metrics registry,
	// AND the telemetry collector (benchmark baseline; production keeps
	// them on).
	DisableObservability bool
}

// Engine is one cluster's query-processing system with CloudViews installed.
type Engine struct {
	ClusterName string
	Catalog     *catalog.Catalog
	Repo        *repository.Repo
	History     *stats.History
	Store       storage.Engine
	Insights    *insights.Service
	Est         *stats.Estimator
	Sim         *cluster.Simulator
	Selection   analysis.SelectionConfig
	// Metrics is the system-wide registry every substrate reports into
	// (nil when Config.DisableObservability is set; all consumers no-op).
	Metrics *obs.Registry
	// Telemetry is the feedback-loop health pipeline: per-job critical-path
	// attribution, day-cadence series sampled from Metrics and the
	// substrates, and SLO watchdog alerts (nil when observability is
	// disabled; every method no-ops on nil).
	Telemetry *telemetry.Collector

	maxViewsPerJob int

	// cached job counters (nil-safe when observability is disabled).
	mJobs       *obs.Counter
	mJobsFailed *obs.Counter
	mBuilt      *obs.Counter
	mReused     *obs.Counter
	mCompileSec *obs.Counter

	// mu guards the signer registry and the result-cache pointer (which
	// RunDay swaps at day boundaries). The cache itself is internally
	// synchronized; only the pointer needs the lock.
	mu      sync.Mutex
	signers map[string]*signature.Signer
	cache   *exec.Cache
	// cacheLimit is the bound resetCache re-applies on day boundaries.
	cacheLimit int

	// plans caches bound roots and (for reuse-disabled jobs) full compile
	// products by normalized script, so recurring submissions skip
	// parse/bind/optimize. Nil when disabled.
	plans *planCache

	// clockMu guards the simulated clock. CompileAndExecute only advances
	// it (never rewinds), so concurrent submissions observe a monotonic
	// clock regardless of completion order.
	clockMu sync.RWMutex
	clock   time.Time

	rng *data.Rand

	// guard is nil unless Config.Guard is enabled; every method no-ops on
	// nil, so the guard-free hot path costs one pointer check.
	guard *guard.Guard

	// faults is nil unless Config.Faults enables at least one point; faultCfg
	// carries the retry policy (always defaulted, even when faults are off,
	// so genuine view unavailability still recovers consistently).
	faults   *fault.Injector
	faultCfg fault.Config
}

// NewEngine builds an engine over the given catalog.
func NewEngine(cfg Config) *Engine {
	cacheLimit := cfg.ResultCacheEntries
	if cacheLimit == 0 {
		cacheLimit = exec.DefaultCacheEntries
	} else if cacheLimit < 0 {
		cacheLimit = 0 // unbounded
	}
	e := &Engine{
		ClusterName:    cfg.ClusterName,
		Catalog:        cfg.Catalog,
		Repo:           repository.New(),
		History:        stats.NewHistory(),
		Insights:       insights.NewService(),
		Est:            stats.NewEstimator(),
		Sim:            cluster.New(cfg.ClusterCfg),
		Selection:      cfg.Selection,
		maxViewsPerJob: cfg.MaxViewsPerJob,
		signers:        make(map[string]*signature.Signer),
		clock:          fixtures.Epoch,
		cache:          exec.NewCacheWithLimit(cacheLimit),
		cacheLimit:     cacheLimit,
		plans:          newPlanCache(cfg.PlanCacheSize),
		rng:            data.NewRand(99),
		guard:          guard.New(cfg.Guard),
		faults:         fault.New(cfg.Faults),
		faultCfg:       cfg.Faults.WithDefaults(),
	}
	e.Sim.SetFaults(e.faults, e.faultCfg)
	if cfg.StorageEngine != nil {
		e.Store = cfg.StorageEngine
		if ca, ok := e.Store.(storage.ClockAware); ok {
			ca.SetNow(e.Clock)
		}
	} else {
		e.Store = storage.NewStore(e.Clock)
	}
	if cfg.ViewTTL > 0 {
		e.Store.SetTTL(cfg.ViewTTL)
	}
	e.Insights.SetClusterEnabled(cfg.ClusterName, true)
	if !cfg.DisableObservability {
		e.Metrics = obs.NewRegistry()
		e.Store.SetMetrics(e.Metrics)
		e.Insights.SetMetrics(e.Metrics)
		e.Sim.SetMetrics(e.Metrics)
		e.mJobs = e.Metrics.Counter("cloudviews_jobs_total")
		e.mJobsFailed = e.Metrics.Counter("cloudviews_jobs_failed_total")
		e.mBuilt = e.Metrics.Counter("cloudviews_views_built_total")
		e.mReused = e.Metrics.Counter("cloudviews_views_reused_total")
		e.mCompileSec = e.Metrics.Counter("cloudviews_compile_seconds_total")
		e.faults.SetMetrics(e.Metrics)
		e.guard.SetMetrics(e.Metrics)
		e.cache.SetMetrics(e.Metrics)
		e.Telemetry = telemetry.NewCollector(telemetry.Config{
			Rules: telemetry.DefaultRules(cfg.SLO),
		})
	}
	return e
}

// dayIndex floors a simulated instant to its day index relative to the
// simulation epoch (negative before the epoch).
func dayIndex(t time.Time) int {
	d := t.Sub(fixtures.Epoch)
	day := int(d / (24 * time.Hour))
	if d < 0 && d%(24*time.Hour) != 0 {
		day--
	}
	return day
}

// Clock returns the engine's simulated time. Safe for concurrent use.
func (e *Engine) Clock() time.Time {
	e.clockMu.RLock()
	defer e.clockMu.RUnlock()
	return e.clock
}

// SetClock sets the simulated time unconditionally (tests and day
// boundaries may rewind it). Safe for concurrent use, but racing it
// against submissions gives whichever write lands last.
func (e *Engine) SetClock(t time.Time) {
	e.clockMu.Lock()
	e.clock = t
	e.clockMu.Unlock()
}

// advanceClock moves the simulated time forward to t if t is later than the
// current clock. Concurrent submissions arrive in arbitrary order, so the
// clock must never move backwards mid-flight (views would "un-seal").
func (e *Engine) advanceClock(t time.Time) {
	e.clockMu.Lock()
	if t.After(e.clock) {
		e.clock = t
	}
	e.clockMu.Unlock()
}

// Guard returns the runtime guardrail subsystem (nil when disabled; all
// guard methods no-op on nil).
func (e *Engine) Guard() *guard.Guard { return e.guard }

// OnboardVC enables CloudViews for a virtual cluster (the opt-in/opt-out
// unit).
func (e *Engine) OnboardVC(vc string) { e.Insights.SetVCEnabled(vc, true) }

// OffboardVC disables a VC and purges its views.
func (e *Engine) OffboardVC(vc string) {
	e.Insights.SetVCEnabled(vc, false)
	e.Store.PurgeVC(vc)
}

// signerFor returns the signer for a SCOPE runtime version. Different runtime
// versions produce incompatible signatures (§4, "Impact of changed
// signatures").
func (e *Engine) signerFor(runtime string) *signature.Signer {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.signers[runtime]
	if !ok {
		s = &signature.Signer{EngineVersion: e.ClusterName + "/" + runtime}
		e.signers[runtime] = s
	}
	return s
}

// resultCache returns the current shared result cache (RunDay swaps it at
// day boundaries).
func (e *Engine) resultCache() *exec.Cache {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache
}

// resetCache installs a fresh result cache and returns it.
func (e *Engine) resetCache() *exec.Cache {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = exec.NewCacheWithLimit(e.cacheLimit)
	e.cache.SetMetrics(e.Metrics)
	return e.cache
}

// PlanCacheStats returns cumulative compiled-plan cache hits and misses
// (zero/zero when the cache is disabled).
func (e *Engine) PlanCacheStats() (hits, misses uint64) { return e.plans.stats() }

// JobRun is the result of the data-plane half of a job: compiled plan,
// executed tables, and the stage specs awaiting cluster scheduling.
type JobRun struct {
	Input    workload.JobInput
	Compile  *optimizer.CompileResult
	Exec     *exec.RunResult
	Stages   []cluster.StageSpec
	Record   *repository.JobRecord
	Output   *data.Table
	Proposed []optimizer.ProposedView
	// Trace is the job's observability record (nil when disabled).
	Trace *obs.Trace
	// Explain holds the job's structured reuse decisions (nil when
	// observability is disabled).
	Explain *explain.Recorder
	// Attempts is how many times the job ran (1 without faults); RetryDelay
	// is the simulated time lost to failed attempts (recompiles + backoff),
	// charged onto the cluster schedule as extra pre-start latency.
	Attempts   int
	RetryDelay time.Duration
}

// CompileAndExecute runs the data plane for one job: parse → bind → optimize
// (with reuse) → execute → publish cooked outputs → stage views for sealing.
func (e *Engine) CompileAndExecute(in workload.JobInput) (*JobRun, error) {
	e.advanceClock(in.Submit)
	signer := e.signerFor(in.Runtime)

	// Trace in simulated time from the job's own submit instant; nil when
	// observability is off (every recording method no-ops on nil). The
	// explain recorder shares the trace's lifecycle: observability off means
	// zero explain cost (nil recorder, every Record a single branch).
	var tr *obs.Trace
	var rec *explain.Recorder
	if e.Metrics != nil {
		tr = obs.NewTrace(in.ID, in.Submit)
		rec = explain.NewRecorder(in.ID, in.VC)
	}
	e.mJobs.Inc()

	// Compiled-plan cache, level 1: identical normalized scripts (same
	// params, runtime, and catalog generation) share one bound root.
	// Compile clones before rewriting and execution never mutates plan
	// nodes, so the shared root is read-only.
	gen := e.Catalog.Generation()
	key, keyOK := e.plans.planCacheKey(in)
	var cached *planEntry
	if keyOK {
		cached = e.plans.lookup(key, gen)
	}
	var root plan.Node
	if cached != nil {
		root = cached.root
		// Replay the front-end trace of the skipped phases so hit and miss
		// submissions produce identical traces.
		tr.Span("parse", 0)
		tr.Span("bind", 0)
	} else {
		script, err := sqlparser.Parse(in.Script)
		if err != nil {
			e.mJobsFailed.Inc()
			return nil, fmt.Errorf("job %s: parse: %w", in.ID, err)
		}
		tr.Span("parse", 0)
		binder := &plan.Binder{Catalog: e.Catalog, Params: in.Params}
		outs, err := binder.BindScript(script)
		if err != nil {
			e.mJobsFailed.Inc()
			return nil, fmt.Errorf("job %s: bind: %w", in.ID, err)
		}
		if len(outs) != 1 {
			e.mJobsFailed.Inc()
			return nil, fmt.Errorf("job %s: expected exactly one OUTPUT, got %d", in.ID, len(outs))
		}
		tr.Span("bind", 0)
		root = outs[0]
		if keyOK {
			cached = e.plans.storeBound(key, gen, root)
		}
	}

	// Job-level retry loop: an injected job crash (container/job-manager
	// loss) abandons everything the attempt staged, waits out the backoff in
	// simulated time, and RECOMPILES — so a retried producer whose target
	// view sealed meanwhile (built by a concurrent job) comes back as a
	// consumer. The final attempt is never crashed: injection alone can
	// never fail a job permanently.
	maxAttempts := 1
	if e.faults.Enabled(fault.JobFail) {
		maxAttempts = e.faultCfg.MaxJobAttempts
	}
	var cr *optimizer.CompileResult
	var res *exec.RunResult
	var sigMap map[plan.Node]signature.Sig
	var subs []signature.Subexpr
	var tmpl *stageTemplate
	var retryDelay time.Duration
	attempt := 1
	for {
		// Compiled-plan cache, level 2: jobs for which the CloudViews
		// controls are off compile to a pure function of (root, estimates) —
		// no view matching, no proposals, no insights round trip — so the
		// whole compile product can be replayed. Guards: the controls must
		// still be off, and a fresh estimate pass (history moves between
		// submissions) must agree exactly with the estimates the cached join
		// algorithm choices were derived from. Retries always recompile.
		cr, sigMap, subs, tmpl = nil, nil, nil, nil
		if attempt == 1 && cached != nil {
			if cp := cached.compiled; cp != nil {
				disabledBy, off := "", true
				if e.Insights != nil {
					disabledBy = e.Insights.DisabledReason(in.Cluster, in.VC, in.OptIn)
					off = disabledBy != ""
				}
				if off && optimizer.EstimatesMatch(e.Est, e.History, cp.cr.Plan, cp.cr.RecurringMap, cp.cr.Estimates) {
					cr, sigMap, subs, tmpl = cp.cr, cp.sigMap, cp.subs, cp.stages
					e.plans.hits.Add(1)
					// Replay the compile-phase trace AND the structured
					// decision of a reuse-disabled job, so a plan-cache hit
					// explains identically to a fresh compile.
					tr.Event("reuse.disabled", "controls disabled CloudViews for this job")
					rec.Record("", "", explain.ReasonPolicyFlight, 0, explain.PolicyDetail(disabledBy))
					tr.Span("optimize", 0)
				}
			}
		}
		if cr == nil {
			if keyOK {
				e.plans.misses.Add(1)
			}
			opt := &optimizer.Optimizer{
				Signer:         signer,
				Est:            e.Est,
				History:        e.History,
				Store:          e.Store,
				Insights:       e.Insights,
				Guard:          e.guard,
				MaxViewsPerJob: e.maxViewsPerJob,
				Trace:          tr,
				Explain:        rec,
			}
			cr = opt.Compile(root, optimizer.CompileOptions{
				JobID:   in.ID,
				Cluster: in.Cluster,
				VC:      in.VC,
				OptIn:   in.OptIn,
			})
			// The result cache is keyed by PHYSICAL signatures: a plan that
			// reuses a view must not replay the accounting of the plan that
			// computed the subexpression.
			sigMap = signer.Physical(cr.Plan)
			subs = signer.Subexpressions(cr.Plan)
			tmpl = buildStageTemplate(cr)
			if attempt == 1 && cached != nil && !cr.ReuseEnabled &&
				len(cr.Proposed) == 0 && len(cr.Matched) == 0 {
				e.plans.storeCompiled(cached, &compiledPlan{cr: cr, sigMap: sigMap, subs: subs, stages: tmpl})
			}
		}
		e.mCompileSec.Add(cr.CompileLatency.Seconds())

		// The attempt is part of the fault-injection key so a retried job
		// re-rolls its spool/read faults instead of replaying them.
		attemptID := in.ID + "/a" + strconv.Itoa(attempt)
		ex := &exec.Executor{
			Catalog: e.Catalog,
			Views:   e.Store,
			Cache:   e.resultCache(),
			SigMap:  sigMap,
			// The vectorized batch path is the production default; its
			// results and accounting are byte-identical to the row-at-a-time
			// serial twin (enforced by the exec equivalence tests).
			Vectorized: true,
			Metrics:    e.Metrics,
			Faults:     e.faults,
			JobID:      attemptID,
			Trace:      tr,
			// NowNanos comes from the job's own submit time, not the shared
			// clock: a job's answer must not depend on which other jobs were
			// in flight when it ran.
			Ctx: &plan.EvalContext{
				NowNanos: in.Submit.UnixNano(),
				Rand:     e.rng.Fork(hashString(in.ID)),
			},
		}
		var err error
		res, err = ex.Run(cr.Plan)
		if err != nil {
			e.failJob(cr, in.ID, tr)
			return nil, fmt.Errorf("job %s: exec: %w", in.ID, err)
		}

		if attempt < maxAttempts &&
			e.faults.Should(fault.JobFail, attemptID) {
			// The attempt's staged views are torn down and its locks released
			// exactly as on a permanent failure — but the failed-jobs counter
			// stays untouched (the job is not done yet).
			e.releaseStaged(cr, in.ID, tr, "job-retry")
			backoff := e.faultCfg.Backoff(attempt)
			retryDelay += cr.CompileLatency + backoff
			// The event value is the simulated seconds this retry costs
			// (recompile + backoff) — the telemetry analyzer's "time lost to
			// fault recovery" input.
			tr.EventV("job.retry", fmt.Sprintf("attempt=%d backoff=%s", attempt, backoff),
				(cr.CompileLatency + backoff).Seconds())
			// The retry recompiles at the post-backoff instant: views sealed
			// in the meantime become visible to it. Its decisions supersede
			// the failed attempt's, exactly as its compile result does.
			e.advanceClock(in.Submit.Add(retryDelay))
			rec.Reset()
			attempt++
			continue
		}
		break
	}

	// Data cooking: OUTPUT to "dataset:<name>" publishes a new version of a
	// shared dataset — derived data created as part of query processing.
	if out, ok := cr.Plan.(*plan.Output); ok && strings.HasPrefix(out.Target, "dataset:") {
		name := strings.TrimPrefix(out.Target, "dataset:")
		if _, err := e.Catalog.BulkUpdate(name, in.Submit, res.Table.Clone()); err != nil {
			e.failJob(cr, in.ID, tr)
			return nil, fmt.Errorf("job %s: publishing cooked dataset: %w", in.ID, err)
		}
	}

	run := &JobRun{
		Input: in, Compile: cr, Exec: res, Proposed: cr.Proposed, Trace: tr,
		Explain: rec, Attempts: attempt, RetryDelay: retryDelay,
	}
	run.Output = res.Table
	run.Stages = tmpl.specsFor(res)
	e.traceStages(tr, run.Stages, res.TotalBatches)
	run.Record = e.buildRecord(in, cr, res, subs)
	// The record lands in the repository immediately so workload analysis
	// sees it; RunDay fills in the scheduling outcome afterwards (the record
	// is shared by pointer).
	run.Record.Start = in.Submit
	run.Record.End = in.Submit
	e.Repo.Add(run.Record)

	// Early sealing: the view becomes readable when the producing stage
	// finishes, which we approximate as a fraction of the job's estimated
	// runtime after submission (plus any time lost to job retries).
	if len(cr.Proposed) > 0 {
		sealAt := in.Submit.Add(retryDelay + e.estimateSealDelay(run))
		tr.SpanAt("seal", in.Submit, sealAt.Sub(in.Submit))
		for _, p := range cr.Proposed {
			if e.Store.SealAt(p.Strict, sealAt) {
				e.Insights.NoteViewCreated()
			} else {
				// The artifact vanished between materialize and seal (e.g.
				// abandoned or expired under an aggressive TTL): drop any
				// half-built state rather than leave the signature wedged.
				e.Store.Abandon(p.Strict)
				tr.Event("view.abandoned", "sig="+p.Strict.Short()+" reason=seal-failed")
			}
			e.Insights.ReleaseViewLock(p.Strict, in.ID)
		}
	}
	e.mBuilt.Add(float64(len(cr.Proposed)))
	e.mReused.Add(float64(len(cr.Matched)))
	for range cr.Matched {
		e.Insights.NoteViewReused()
	}

	// Runtime fallbacks complete the decision trail: a view matched at
	// compile time whose read failed forfeits its promised saving. The
	// outcome correlation is shared with the guard below (same index order
	// as cr.Matched).
	outs := viewOutcomes(cr, res)
	if rec != nil {
		for i, o := range outs {
			if o.FellBack {
				m := cr.Matched[i]
				rec.Record(m.Strict, m.ReplacedOp, explain.ReasonFallback, m.Saved, "")
			}
		}
	}

	// Fold the job's critical-path attribution into the day/VC telemetry
	// aggregates. The cluster queue overlay lands later (RunDay charges it
	// via AddQueueWait), so this covers exactly the data-plane timeline.
	e.Telemetry.ObserveJob(dayIndex(in.Submit), in.VC, tr)
	e.Telemetry.ObserveDecisions(dayIndex(in.Submit), in.VC, rec)

	// Feed the guard the job's realized view outcomes: each matched view
	// either banked its promised saving or forfeited it to a read fallback
	// (the executor lists fallbacks by strict signature).
	if e.guard != nil {
		e.guard.ObserveJob(dayIndex(in.Submit), in.VC, in.ID, outs)
	}

	return run, nil
}

// viewOutcomes correlates the final attempt's matched views with the strict
// signatures the executor fell back on.
func viewOutcomes(cr *optimizer.CompileResult, res *exec.RunResult) []guard.ViewOutcome {
	if len(cr.Matched) == 0 {
		return nil
	}
	var fell map[signature.Sig]int
	if len(res.FallbackSigs) > 0 {
		fell = make(map[signature.Sig]int, len(res.FallbackSigs))
		for _, s := range res.FallbackSigs {
			fell[s]++
		}
	}
	out := make([]guard.ViewOutcome, 0, len(cr.Matched))
	for _, m := range cr.Matched {
		o := guard.ViewOutcome{Recurring: m.Recurring, SavedSec: m.Saved}
		if fell[m.Strict] > 0 {
			fell[m.Strict]--
			o.FellBack = true
		}
		out = append(out, o)
	}
	return out
}

// failJob settles a job that errored after compilation: any views it staged
// (and the creation locks it holds) must be released so the next job touching
// those signatures can build them — otherwise a single failed job orphans its
// views for the rest of the run.
func (e *Engine) failJob(cr *optimizer.CompileResult, jobID string, tr *obs.Trace) {
	e.mJobsFailed.Inc()
	e.releaseStaged(cr, jobID, tr, "job-failed")
}

// releaseStaged abandons EVERY view a compilation staged and releases every
// creation lock it holds. It runs on all failure paths — permanent failure
// and injected retry alike — so no signature is left wedged regardless of how
// many views one job was building.
func (e *Engine) releaseStaged(cr *optimizer.CompileResult, jobID string, tr *obs.Trace, reason string) {
	for _, p := range cr.Proposed {
		e.Store.Abandon(p.Strict)
		e.Insights.ReleaseViewLock(p.Strict, jobID)
		tr.Event("view.abandoned", "sig="+p.Strict.Short()+" reason="+reason)
	}
}

// stageSpanNames interns the "execute:stage-NN" / "materialize:stage-NN"
// span names for the stage indexes every plan actually has, so tracing a
// submission doesn't format strings per stage.
var stageSpanNames = func() (tab [2][32]string) {
	for i := range tab[0] {
		tab[0][i] = fmt.Sprintf("execute:stage-%02d", i)
		tab[1][i] = fmt.Sprintf("materialize:stage-%02d", i)
	}
	return
}()

func stageSpanName(i int, spool bool) string {
	kind := 0
	if spool {
		kind = 1
	}
	if i < len(stageSpanNames[kind]) {
		return stageSpanNames[kind][i]
	}
	if spool {
		return fmt.Sprintf("materialize:stage-%02d", i)
	}
	return fmt.Sprintf("execute:stage-%02d", i)
}

// traceStages appends one execute span per scheduled stage, in simulated
// time: the stage's container-seconds of work collapsed onto the trace
// cursor. Spool stages are labeled materialize. batches is the job's total
// vectorized batch count; it rides on the first execute span (span-level
// attribution is not tracked — the executor accounts batches per job).
func (e *Engine) traceStages(tr *obs.Trace, stages []cluster.StageSpec, batches int64) {
	if tr == nil {
		return
	}
	// Data-plane path: the job starts immediately. RunDay overlays the real
	// cluster queue wait as a separate "queue:cluster" span.
	tr.Span("queue", 0)
	for i, st := range stages {
		name := stageSpanName(i, st.IsSpool)
		d := time.Duration(st.Work * float64(time.Second))
		if !st.IsSpool && batches > 0 {
			tr.SpanBatched(name, d, batches)
			batches = 0
		} else {
			tr.Span(name, d)
		}
	}
}

// estimateSealDelay approximates when the spooled subexpression's stage
// completes: total work divided by the job's token allocation, scaled down
// because the spool point is typically in the lower half of the DAG.
func (e *Engine) estimateSealDelay(run *JobRun) time.Duration {
	tokens := 1
	for _, st := range run.Stages {
		if st.Width > tokens {
			tokens = st.Width
		}
	}
	if tokens > 50 {
		tokens = 50
	}
	sec := run.Exec.TotalWork / float64(tokens) * 0.6
	return run.Compile.CompileLatency + time.Duration(sec*float64(time.Second))
}

// stageTemplate is the execution-independent part of stage lowering: the
// stage DAG (widths, deps, spool flags) plus per-stage weights for
// proportional work splitting. It is a pure function of (plan, estimates), so
// the plan cache shares one template across identical submissions and cache
// hits skip re-lowering the plan entirely.
type stageTemplate struct {
	// specs has Work left zero; Deps slices are shared across runs (the
	// cluster scheduler only reads them).
	specs       []cluster.StageSpec
	weights     []float64
	totalWeight float64
	spoolStages int
}

// buildStageTemplate lowers the physical plan once per compilation.
func buildStageTemplate(cr *optimizer.CompileResult) *stageTemplate {
	pp := optimizer.BuildStages(cr.Plan, cr.Estimates)
	t := &stageTemplate{
		specs:   make([]cluster.StageSpec, len(pp.Stages)),
		weights: make([]float64, len(pp.Stages)),
	}
	for i, st := range pp.Stages {
		spec := cluster.StageSpec{Width: st.Width, IsSpool: st.IsSpool}
		if len(st.Deps) > 0 {
			spec.Deps = make([]int, len(st.Deps))
			for k, d := range st.Deps {
				spec.Deps[k] = d.ID
			}
		}
		t.specs[i] = spec
		if st.IsSpool {
			t.spoolStages++
			continue
		}
		w := estimatedOpWork(st.Op, cr.Estimates[st.Node])
		t.weights[i] = w
		t.totalWeight += w
	}
	return t
}

// specsFor fills the template with one execution's measured work: total
// executed work is distributed across stages proportionally to their
// estimated work so that replayed (cached) executions still yield a faithful
// schedule.
func (t *stageTemplate) specsFor(res *exec.RunResult) []cluster.StageSpec {
	specs := make([]cluster.StageSpec, len(t.specs))
	copy(specs, t.specs)
	nonSpoolWork := res.TotalWork - res.SpoolWork
	for i := range specs {
		if specs[i].IsSpool {
			specs[i].Work = res.SpoolWork / float64(t.spoolStages)
		} else if t.totalWeight > 0 {
			specs[i].Work = nonSpoolWork * t.weights[i] / t.totalWeight
		} else {
			specs[i].Work = nonSpoolWork / float64(len(specs))
		}
	}
	return specs
}

// opWorkPerRow mirrors the executor's per-row cost model over estimates, used
// only for proportional work splitting.
var opWorkPerRow = map[string]float64{
	"Scan": 2.0e-6, "ViewScan": 2.0e-6, "Filter": 1.0e-6, "Project": 1.5e-6,
	"Join": 4.0e-6, "Aggregate": 3.0e-6, "Union": 0.2e-6, "UDO": 8.0e-6,
	"Sample": 0.8e-6, "Sort": 2.0e-6, "Output": 0.5e-6,
}

func estimatedOpWork(op string, est stats.Estimate) float64 {
	perRow := opWorkPerRow[op]
	if perRow == 0 {
		perRow = 1.0e-6
	}
	return est.Rows*perRow + est.Bytes*2.0e-9 + 1e-9
}

// buildRecord assembles the repository row for a job (cluster outcome fields
// are filled in later by RunDay) and feeds the runtime history. subs is the
// plan's subexpression enumeration, precomputed at compile time (and shared
// via the plan cache across identical submissions). The Work recorded per
// subexpression is its SUBTREE cost — what reusing it would save — and
// subtrees that were themselves served from a view are excluded from history
// so reuse never poisons the recompute-cost estimates.
func (e *Engine) buildRecord(in workload.JobInput, cr *optimizer.CompileResult, res *exec.RunResult, subs []signature.Subexpr) *repository.JobRecord {
	statByNode := make(map[plan.Node]exec.NodeStat, len(res.Stats))
	for _, st := range res.Stats {
		statByNode[st.Node] = st
	}
	// Fold per-operator work into per-subtree work (post-order, so children
	// precede parents) and mark subtrees containing a ViewScan.
	subtreeWork := make([]float64, len(subs))
	hasView := make([]bool, len(subs))
	for i, s := range subs {
		if st, ok := statByNode[s.Node]; ok {
			subtreeWork[i] += st.Work
		}
		if s.Op == "ViewScan" {
			hasView[i] = true
		}
		if p := s.Parent; p >= 0 {
			subtreeWork[p] += subtreeWork[i]
			if hasView[i] {
				hasView[p] = true
			}
		}
	}
	var reused map[signature.Sig]bool // nil lookups read false
	if len(cr.Matched) > 0 {
		reused = make(map[signature.Sig]bool, len(cr.Matched))
		for _, m := range cr.Matched {
			reused[m.Strict] = true
		}
	}
	rec := &repository.JobRecord{
		Subexprs:    make([]repository.SubexprRecord, 0, len(subs)),
		JobID:       in.ID,
		Cluster:     in.Cluster,
		VC:          in.VC,
		Pipeline:    in.Pipeline,
		User:        in.User,
		Runtime:     in.Runtime,
		Submit:      in.Submit,
		Template:    subs[len(subs)-1].Recurring,
		Tag:         cr.Tag,
		ViewsBuilt:  len(cr.Proposed),
		ViewsReused: len(cr.Matched),
	}
	for i, s := range subs {
		sr := repository.SubexprRecord{
			JobID:         in.ID,
			Strict:        s.Strict,
			Recurring:     s.Recurring,
			Op:            s.Op,
			Height:        s.Height,
			NodeCount:     s.NodeCount,
			Eligible:      s.Eligibility,
			InputDatasets: s.InputDatasets,
			Parent:        s.Parent,
			Reused:        reused[s.Strict],
			Work:          subtreeWork[i],
		}
		if st, ok := statByNode[s.Node]; ok {
			sr.Rows, sr.Bytes = st.RowsOut, st.BytesOut
			if s.Op == "Join" {
				sr.JoinAlgo = st.Algo.String()
			}
		} else if j, isJoin := s.Node.(*plan.Join); isJoin {
			// Cache-replayed joins still report their chosen algorithm.
			sr.JoinAlgo = j.Algo.String()
		}
		rec.Subexprs = append(rec.Subexprs, sr)

		// Runtime history: only genuine recomputations count.
		if !hasView[i] && subtreeWork[i] > 0 && s.Op != "Output" && s.Op != "Spool" {
			e.History.Record(s.Recurring, stats.Observation{
				Rows:  sr.Rows,
				Bytes: sr.Bytes,
				Work:  subtreeWork[i],
			})
		}
	}
	return rec
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for _, c := range []byte(s) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// FormatPlan renders a compiled plan tree for display.
func FormatPlan(n plan.Node) string { return plan.Format(n) }
