package core_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/core"
	"cloudviews/internal/data"
	"cloudviews/internal/fault"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/workload"
)

// faultMiniWorld is miniWorld with an injector: the same single-dataset
// engine, plus deterministic faults at the given rates.
func faultMiniWorld(t *testing.T, fcfg fault.Config) *core.Engine {
	t.Helper()
	cat := catalog.New()
	schema := data.Schema{
		{Name: "Id", Kind: data.KindInt},
		{Name: "Region", Kind: data.KindString},
		{Name: "Value", Kind: data.KindFloat},
	}
	if _, err := cat.Define("Events", schema); err != nil {
		t.Fatal(err)
	}
	tb := data.NewTable(schema)
	for i := 0; i < 200; i++ {
		tb.Append(data.Row{
			data.Int(int64(i)),
			data.String_([]string{"us", "eu", "asia"}[i%3]),
			data.Float(float64(i % 89)),
		})
	}
	if _, err := cat.BulkUpdate("Events", fixtures.Epoch, tb); err != nil {
		t.Fatal(err)
	}
	cat.SetScaleFactor("Events", 50_000)
	eng := core.NewEngine(core.Config{
		ClusterName: "mini",
		Catalog:     cat,
		ClusterCfg:  cluster.Config{Capacity: 100},
		Selection:   analysis.SelectionConfig{UseBigSubs: true},
		Faults:      fcfg,
	})
	eng.OnboardVC("vc1")
	return eng
}

func faultSubmit(t *testing.T, eng *core.Engine, id string, clock *time.Time) *core.JobRun {
	t.Helper()
	run, err := eng.CompileAndExecute(workload.JobInput{
		ID: id, Cluster: "mini", VC: "vc1", Pipeline: "p", Runtime: "r1",
		Script: miniQuery, Submit: *clock, OptIn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	*clock = clock.Add(time.Minute)
	return run
}

// primeFaultReuse drives the engine to a sealed, reusable view: prime jobs,
// analysis, builder, plus clock headroom for the seal to take effect.
func primeFaultReuse(t *testing.T, eng *core.Engine, clock *time.Time) *core.JobRun {
	t.Helper()
	for i := 0; i < 3; i++ {
		faultSubmit(t, eng, fmt.Sprintf("prime-%d", i), clock)
	}
	eng.RunAnalysis(fixtures.Epoch.Add(-time.Hour), clock.Add(time.Hour))
	builder := faultSubmit(t, eng, "builder", clock)
	*clock = clock.Add(time.Hour)
	return builder
}

// TestViewReadFaultFallsBackToRecompute: with every view read failing, a
// consumer that matched a sealed view transparently recomputes the
// subexpression — same answer, zero job failures. Reuse is a pure
// optimization; losing it can only cost time.
func TestViewReadFaultFallsBackToRecompute(t *testing.T) {
	eng := faultMiniWorld(t, fault.Config{Seed: 5, Rates: map[fault.Point]float64{fault.ViewRead: 1}})
	clock := fixtures.Epoch
	builder := primeFaultReuse(t, eng, &clock)
	if len(builder.Compile.Proposed) != 1 {
		t.Fatalf("builder proposed %d views", len(builder.Compile.Proposed))
	}

	consumer := faultSubmit(t, eng, "consumer", &clock)
	if len(consumer.Compile.Matched) != 1 {
		t.Fatalf("consumer matched %d views (compile-time reuse should still happen)", len(consumer.Compile.Matched))
	}
	if consumer.Exec.ReuseFallbacks != 1 {
		t.Fatalf("reuse fallbacks = %d, want 1", consumer.Exec.ReuseFallbacks)
	}
	if gf, wf := consumer.Output.Fingerprint(), builder.Output.Fingerprint(); gf != wf {
		t.Error("fallback recompute changed the job's answer")
	}
	var sawFallback bool
	for _, ev := range consumer.Trace.Events() {
		if ev.Kind == "view.fallback" {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Error("trace missing view.fallback event")
	}
	if export := eng.Metrics.ExportString(); !strings.Contains(export, "cloudviews_reuse_fallbacks_total 1") {
		t.Error("metrics export missing reuse-fallback counter")
	}
}

// TestSpoolWriteFaultAbandonsView: with every spool write failing, the
// builder's job still succeeds (spooling is off the result path), but the
// half-written artifact is abandoned at seal time and the signature stays
// buildable — the NEXT producer stages it again.
func TestSpoolWriteFaultAbandonsView(t *testing.T) {
	eng := faultMiniWorld(t, fault.Config{Seed: 5, Rates: map[fault.Point]float64{fault.SpoolWrite: 1}})
	clock := fixtures.Epoch
	builder := primeFaultReuse(t, eng, &clock)
	if len(builder.Compile.Proposed) != 1 {
		t.Fatalf("builder proposed %d views", len(builder.Compile.Proposed))
	}
	if builder.Exec.SpoolWriteFailures != 1 {
		t.Fatalf("spool write failures = %d, want 1", builder.Exec.SpoolWriteFailures)
	}

	if n := eng.Store.Count(); n != 0 {
		t.Errorf("failed spool still sealed %d views", n)
	}
	if n := eng.Store.PendingViews(); n != 0 {
		t.Errorf("%d staged views left pending after seal failure", n)
	}
	if n := eng.Insights.LockCount(); n != 0 {
		t.Errorf("%d creation locks left held after seal failure", n)
	}
	if err := eng.Store.AuditBytes(); err != nil {
		t.Errorf("byte accounting inconsistent: %v", err)
	}

	// The signature is not wedged: the next opted-in job proposes the build
	// again (and its spool write fails again, at rate 1 — but never the job).
	rebuilder := faultSubmit(t, eng, "rebuilder", &clock)
	if len(rebuilder.Compile.Proposed) != 1 {
		t.Fatalf("rebuilder proposed %d views — signature wedged", len(rebuilder.Compile.Proposed))
	}
	if gf, wf := rebuilder.Output.Fingerprint(), builder.Output.Fingerprint(); gf != wf {
		t.Error("spool failure changed the job's answer")
	}
}

// TestJobFaultRetriesWithRecompile: with every first attempt crashing, jobs
// retry with a fresh compilation — the attempt count and retry delay are
// reported, the crashed attempt's staged views and locks are torn down, and
// reuse still converges: the retried builder seals its view and the retried
// consumer reuses it.
func TestJobFaultRetriesWithRecompile(t *testing.T) {
	eng := faultMiniWorld(t, fault.Config{
		Seed:  5,
		Rates: map[fault.Point]float64{fault.JobFail: 1},
		// Two attempts: the first always crashes, the final one never does —
		// injection alone can never permanently fail a job.
		MaxJobAttempts: 2,
	})
	clock := fixtures.Epoch
	builder := primeFaultReuse(t, eng, &clock)

	if builder.Attempts != 2 {
		t.Fatalf("builder attempts = %d, want 2", builder.Attempts)
	}
	if builder.RetryDelay <= 0 {
		t.Error("retry delay not charged")
	}
	if len(builder.Compile.Proposed) != 1 {
		t.Fatalf("retried builder proposed %d views", len(builder.Compile.Proposed))
	}
	var retries, abandoned int
	for _, ev := range builder.Trace.Events() {
		switch ev.Kind {
		case "job.retry":
			retries++
		case "view.abandoned":
			if strings.Contains(ev.Detail, "reason=job-retry") {
				abandoned++
			}
		}
	}
	if retries != 1 || abandoned != 1 {
		t.Errorf("trace: %d job.retry, %d view.abandoned(job-retry); want 1 and 1", retries, abandoned)
	}
	if n := eng.Insights.LockCount(); n != 0 {
		t.Errorf("%d locks held after retried builder sealed", n)
	}

	consumer := faultSubmit(t, eng, "consumer", &clock)
	if consumer.Attempts != 2 {
		t.Errorf("consumer attempts = %d, want 2", consumer.Attempts)
	}
	if len(consumer.Compile.Matched) != 1 {
		t.Errorf("retried consumer matched %d views", len(consumer.Compile.Matched))
	}
	if gf, wf := consumer.Output.Fingerprint(), builder.Output.Fingerprint(); gf != wf {
		t.Error("job retry changed the answer")
	}
}
