module cloudviews

go 1.22
