// Command cvanalyze runs the workload analyses of the paper: Figure 2 (shared
// dataset consumers), Figure 3 (subexpression overlap over time), Figure 8
// (generalized-reuse opportunity), and Figure 9 (concurrent joins).
//
// Usage:
//
//	cvanalyze -fig 2|3|8|9|all [-scale 0.5] [-days N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudviews/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2, 3, 8, 9, concurrent (§5.4 estimate), or all")
	scale := flag.Float64("scale", 0.5, "workload scale factor (1.0 = paper-sized clusters)")
	days := flag.Int("days", 0, "override window length in days (0 = per-figure default)")
	flag.Parse()

	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "cvanalyze %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s done in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("2") {
		run("figure 2", func() error {
			res, err := experiments.RunFigure2(*days, *scale)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFigure2(res))
			return nil
		})
	}
	if want("3") {
		run("figure 3", func() error {
			d := *days
			if d == 0 {
				d = 84 // 12 weeks by default; -days 304 for the full series
			}
			res, err := experiments.RunFigure3(d, *scale)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFigure3(res))
			return nil
		})
	}
	if want("8") {
		run("figure 8", func() error {
			res, err := experiments.RunFigure8(*days, *scale)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFigure8(res, 25))
			return nil
		})
	}
	if want("9") {
		run("figure 9", func() error {
			res, err := experiments.RunFigure9(*scale)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFigure9(res))
			return nil
		})
	}
	if want("concurrent") {
		run("concurrent opportunity", func() error {
			res, err := experiments.RunConcurrentOpportunity(*scale)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderConcurrentOpportunity(res, 15))
			return nil
		})
	}
}
