// Command cvbenchgate parses `go test -bench -benchmem` output, records the
// executor-throughput trajectory as JSON, and gates CI on allocation
// regressions: if any gated benchmark's allocs/op grows more than the allowed
// fraction over the committed baseline, it exits non-zero.
//
// Allocations gate instead of ns/op because allocs/op is deterministic for a
// given binary (the hot path either allocates or it doesn't) while wall-clock
// on shared CI runners is too noisy for a hard threshold. The ns/op numbers
// are still recorded in the trajectory file for trend inspection.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkConcurrentSubmit -benchmem . |
//	    cvbenchgate -out BENCH_exec.json -baseline BENCH_exec.baseline.json
//
// With no -baseline the tool only records; with no -out it only gates.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// HasAllocs distinguishes a measured 0 allocs/op (the lexer bench) from
	// output produced without -benchmem; only measured entries arm the gate.
	HasAllocs bool `json:"has_allocs"`
	// Extra holds custom b.ReportMetric units (jobs/sec, MB/s, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// File is the trajectory-file shape (BENCH_exec.json).
type File struct {
	Gate    string   `json:"gate"`
	Results []Result `json:"results"`
}

func main() {
	in := flag.String("in", "", "read bench output from a file instead of stdin")
	out := flag.String("out", "", "write the parsed trajectory JSON here")
	baseline := flag.String("baseline", "", "committed baseline JSON to gate against")
	gate := flag.String("gate", "BenchmarkConcurrentSubmit", "benchmark name prefix the allocation gate applies to")
	maxRegress := flag.Float64("max-alloc-regress", 0.10, "allowed fractional allocs/op increase over baseline")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("open input: %v", err)
		}
		defer f.Close()
		r = f
	}

	results, err := parseBench(r)
	if err != nil {
		fatal("parse bench output: %v", err)
	}
	if len(results) == 0 {
		fatal("no benchmark lines found in input")
	}

	if *out != "" {
		data, err := json.MarshalIndent(File{Gate: *gate, Results: results}, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *out, err)
		}
		fmt.Printf("cvbenchgate: wrote %d results to %s\n", len(results), *out)
	}

	if *baseline == "" {
		return
	}
	base, err := readFile(*baseline)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	failures := gateAllocs(base.Results, results, *gate, *maxRegress)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "cvbenchgate: FAIL "+f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	fmt.Printf("cvbenchgate: allocation gate passed (%s*, tolerance %.0f%%)\n", *gate, *maxRegress*100)
}

// gateAllocs compares every gated baseline entry against the fresh results.
// A gated benchmark missing from the fresh run fails the gate — silently
// dropping an arm must not pass.
func gateAllocs(base, cur []Result, prefix string, tolerance float64) []string {
	byName := make(map[string]Result, len(cur))
	for _, r := range cur {
		byName[r.Name] = r
	}
	var failures []string
	for _, b := range base {
		if !strings.HasPrefix(b.Name, prefix) || !b.HasAllocs {
			continue
		}
		c, ok := byName[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from this run", b.Name))
			continue
		}
		limit := b.AllocsPerOp * (1 + tolerance)
		if c.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f exceeds baseline %.0f by more than %.0f%% (limit %.1f)",
				b.Name, c.AllocsPerOp, b.AllocsPerOp, tolerance*100, limit))
		}
	}
	return failures
}

func readFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// parseBench extracts benchmark result lines from `go test -bench` output.
// A line looks like:
//
//	BenchmarkConcurrentSubmit/workers=1  114235  33933 ns/op  29470 jobs/sec  7973 B/op  44 allocs/op
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				res = Result{}
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
				res.HasAllocs = true
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = val
			}
		}
		if res.Name != "" {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cvbenchgate: "+format+"\n", args...)
	os.Exit(1)
}
