package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudviews/internal/explain"
	"cloudviews/internal/fault"
	"cloudviews/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the golden summary")

// TestSummaryGolden pins the cvdash text summary byte-for-byte so format
// changes show up as reviewable diffs. Regenerate with:
//
//	go test ./cmd/cvdash -run Golden -update
func TestSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.1, 3, 0, 0, fault.Config{}, "", ""); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "summary_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("summary drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestSummaryDeterministic guards the golden test itself: identical flags must
// render identical bytes (the report walks several maps, so every listing
// needs a total order).
func TestSummaryDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, 0.1, 2, 7, 0, fault.Config{}, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, 0.1, 2, 7, 0, fault.Config{}, "", ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("summary is nondeterministic across runs")
	}
}

// TestHTMLReport exercises the -o path: the HTML report must be written,
// self-contained (inline style, no external references), and byte-identical
// across runs with the same flags.
func TestHTMLReport(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.html")
	p2 := filepath.Join(dir, "b.html")
	var sink bytes.Buffer
	if err := run(&sink, 0.1, 2, 7, 0, fault.Config{}, p1, ""); err != nil {
		t.Fatal(err)
	}
	sink.Reset()
	if err := run(&sink, 0.1, 2, 7, 0, fault.Config{}, p2, ""); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("HTML report is nondeterministic across runs")
	}
	s := string(a)
	for _, want := range []string{"<!doctype html>", "<style>", "arm: baseline", "arm: cloudviews", "polyline"} {
		if !strings.Contains(s, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	for _, forbid := range []string{"http://", "https://", "<script"} {
		if strings.Contains(s, forbid) {
			t.Errorf("HTML report must be self-contained, found %q", forbid)
		}
	}
}

// TestExplainRollupJSON exercises the -explain-json path: the artifact must be
// valid JSON, deterministic, and its reasons drawn from the closed enum; the
// text summary must carry the matching miss-reason section.
func TestExplainRollupJSON(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	var sink bytes.Buffer
	if err := run(&sink, 0.1, 2, 7, 0, fault.Config{}, "", p1); err != nil {
		t.Fatal(err)
	}
	text := sink.String()
	if !strings.Contains(text, "REUSE MISS REASONS") {
		t.Error("text summary is missing the miss-reason section")
	}
	sink.Reset()
	if err := run(&sink, 0.1, 2, 7, 0, fault.Config{}, "", p2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("explain rollup JSON is nondeterministic across runs")
	}
	var roll telemetry.ExplainRollup
	if err := json.Unmarshal(a, &roll); err != nil {
		t.Fatalf("explain rollup is not valid JSON: %v", err)
	}
	if len(roll.TotalMiss) == 0 {
		t.Fatal("explain rollup recorded no miss reasons over a 2-day run")
	}
	for reason := range roll.TotalMiss {
		if !explain.Valid(explain.Reason(reason)) {
			t.Errorf("rollup reason %q outside the closed enum", reason)
		}
	}
	// Day totals reconcile with the fleet totals.
	sum := make(map[string]int)
	for _, d := range roll.Days {
		for r, n := range d.Miss {
			sum[r] += n
		}
	}
	for r, n := range roll.TotalMiss {
		if sum[r] != n {
			t.Errorf("reason %q: day sum %d != total %d", r, sum[r], n)
		}
	}
}
