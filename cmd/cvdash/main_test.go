package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudviews/internal/fault"
)

var update = flag.Bool("update", false, "rewrite the golden summary")

// TestSummaryGolden pins the cvdash text summary byte-for-byte so format
// changes show up as reviewable diffs. Regenerate with:
//
//	go test ./cmd/cvdash -run Golden -update
func TestSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.1, 3, 0, 0, fault.Config{}, ""); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "summary_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("summary drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestSummaryDeterministic guards the golden test itself: identical flags must
// render identical bytes (the report walks several maps, so every listing
// needs a total order).
func TestSummaryDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, 0.1, 2, 7, 0, fault.Config{}, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, 0.1, 2, 7, 0, fault.Config{}, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("summary is nondeterministic across runs")
	}
}

// TestHTMLReport exercises the -o path: the HTML report must be written,
// self-contained (inline style, no external references), and byte-identical
// across runs with the same flags.
func TestHTMLReport(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.html")
	p2 := filepath.Join(dir, "b.html")
	var sink bytes.Buffer
	if err := run(&sink, 0.1, 2, 7, 0, fault.Config{}, p1); err != nil {
		t.Fatal(err)
	}
	sink.Reset()
	if err := run(&sink, 0.1, 2, 7, 0, fault.Config{}, p2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("HTML report is nondeterministic across runs")
	}
	s := string(a)
	for _, want := range []string{"<!doctype html>", "<style>", "arm: baseline", "arm: cloudviews", "polyline"} {
		if !strings.Contains(s, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	for _, forbid := range []string{"http://", "https://", "<script"} {
		if strings.Contains(s, forbid) {
			t.Errorf("HTML report must be self-contained, found %q", forbid)
		}
	}
}
