// Command cvdash renders the feedback-loop health dashboard: it runs the
// production A/B experiment (baseline vs CloudViews over the same generated
// workload), collects the telemetry pipeline's output — day-cadence series,
// per-phase critical-path attribution, SLO watchdog alerts — and prints a
// plain-text summary, optionally writing the self-contained HTML report.
//
// Usage:
//
//	cvdash [-scale 0.25] [-days N] [-seed N] [-o report.html]
//	       [-explain-json rollup.json] [-budget BYTES] [-faults SPEC]
//	       [-faultseed N]
//
// -budget sets the per-VC view-storage SLO in bytes; when any VC's
// cloudviews_view_bytes gauge exceeds it, the watchdog pages. 0 disables the
// storage rule.
//
// Output is a pure function of the flags: the same seed and settings render
// byte-identical text and HTML, so the summary is golden-testable and the
// HTML diffs cleanly across code changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cloudviews/internal/experiments"
	"cloudviews/internal/fault"
	"cloudviews/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale factor (1.0 = paper-sized deployment)")
	days := flag.Int("days", 0, "override window length in days (0 = scaled default)")
	seed := flag.Uint64("seed", 0, "override workload seed")
	out := flag.String("o", "", "write the HTML report to this path")
	explainJSON := flag.String("explain-json", "", "write the CloudViews arm's miss-reason fleet rollup as JSON to this path")
	budget := flag.Int64("budget", 0, "per-VC view-storage SLO in bytes (0 = no storage rule)")
	faults := flag.String("faults", "", `fault spec, e.g. "stage=0.05,read=0.02,seed=7" (empty = no injection)`)
	faultSeed := flag.Uint64("faultseed", 0, "override the fault-injection seed (0 = keep spec's seed)")
	flag.Parse()

	var fcfg fault.Config
	if *faults != "" {
		parsed, err := fault.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cvdash: -faults: %v\n", err)
			os.Exit(2)
		}
		if *faultSeed != 0 {
			parsed.Seed = *faultSeed
		}
		fcfg = parsed
	}
	if err := run(os.Stdout, *scale, *days, *seed, *budget, fcfg, *out, *explainJSON); err != nil {
		fmt.Fprintf(os.Stderr, "cvdash: %v\n", err)
		os.Exit(1)
	}
}

// run executes the experiment and writes the text summary to w; when htmlPath
// is non-empty the HTML report is written there too, and explainPath gets the
// CloudViews arm's miss-reason rollup as JSON. Extracted from main so the
// summary format can be golden-tested.
func run(w io.Writer, scale float64, days int, seed uint64, budget int64, faults fault.Config, htmlPath, explainPath string) error {
	cfg := experiments.DefaultProduction()
	if scale < 1.0 {
		cfg = cfg.Scale(scale)
	}
	if days > 0 {
		cfg.Days = days
	}
	if seed != 0 {
		cfg.Profile.Seed = seed
	}
	cfg.Faults = faults
	cfg.SLO = telemetry.SLOConfig{StorageBudgetPerVC: budget}

	res, err := experiments.RunProduction(cfg)
	if err != nil {
		return err
	}
	report := res.Report()
	if _, err := io.WriteString(w, report.RenderText()); err != nil {
		return err
	}
	if htmlPath != "" {
		if err := os.WriteFile(htmlPath, []byte(report.RenderHTML()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote HTML report to %s\n", htmlPath)
	}
	if explainPath != "" {
		blob, err := json.MarshalIndent(telemetry.BuildExplainRollup(res.CVTelemetry), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(explainPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote explain rollup to %s\n", explainPath)
	}
	return nil
}
