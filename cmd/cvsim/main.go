// Command cvsim runs the production-window experiment: the same generated
// Cosmos-like workload executed twice — baseline and CloudViews-enabled —
// over a simulated two-month window, reproducing Table 1 and Figures 6a–d and
// 7a–d of the paper.
//
// Usage:
//
//	cvsim [-scale 0.25] [-days N] [-series] [-seed N] [-metrics]
//
// -scale 1.0 runs the full 619-pipeline, 21-VC deployment (minutes of CPU);
// the default 0.25 keeps it under a minute while preserving the shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudviews/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale factor (1.0 = paper-sized deployment)")
	days := flag.Int("days", 0, "override window length in days (0 = scaled default)")
	series := flag.Bool("series", false, "print the full Figure 6/7 daily series")
	seed := flag.Uint64("seed", 0, "override workload seed")
	metrics := flag.Bool("metrics", false, "print the CloudViews arm's system-metrics export")
	flag.Parse()

	cfg := experiments.DefaultProduction()
	if *scale < 1.0 {
		cfg = cfg.Scale(*scale)
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Profile.Seed = *seed
	}

	fmt.Printf("cvsim: %d pipelines, %d VCs, %d days (scale %.2f)\n",
		cfg.Profile.Pipelines, cfg.Profile.VCs, cfg.Days, *scale)
	start := time.Now()
	res, err := experiments.RunProduction(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cvsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("completed in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println(experiments.RenderTable1(res.Table1))
	if *series {
		fmt.Println(experiments.RenderFigure6(res))
		fmt.Println(experiments.RenderFigure7(res))
	} else {
		// Print first/last rows so the shape is visible without -series.
		fmt.Println("(run with -series for the full Figure 6/7 daily series)")
	}
	if *metrics {
		fmt.Println("\nSYSTEM METRICS (CloudViews arm, Prometheus text format)")
		fmt.Print(res.Metrics)
	}
}
