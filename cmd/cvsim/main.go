// Command cvsim runs the production-window experiment: the same generated
// Cosmos-like workload executed twice — baseline and CloudViews-enabled —
// over a simulated two-month window, reproducing Table 1 and Figures 6a–d and
// 7a–d of the paper.
//
// Usage:
//
//	cvsim [-scale 0.25] [-days N] [-series] [-seed N] [-metrics]
//	      [-metrics-both] [-explain] [-report out.html] [-faults SPEC]
//	      [-faultseed N]
//	      [-store mem|disk] [-datadir DIR] [-guard]
//
// -scale 1.0 runs the full 619-pipeline, 21-VC deployment (minutes of CPU);
// the default 0.25 keeps it under a minute while preserving the shapes.
//
// -faults injects deterministic failures into both arms identically. SPEC is
// comma-separated point=rate pairs — stage, preempt, spool, read, job — plus
// an optional seed, e.g. -faults "stage=0.05,read=0.02,seed=7". Same spec,
// same schedule: reruns reproduce the exact fault placement.
//
// -report writes the self-contained cvdash HTML health report (both arms:
// series sparklines, critical-path breakdowns, SLO alerts) to the given path.
// Output is byte-identical for the same seed and flags.
//
// -store selects the view-store backend: "mem" (default, in-memory) or
// "disk", which persists each arm's views in a crash-recoverable WAL +
// snapshot store under -datadir (default ./cvsim-data). On startup each
// arm's store recovers whatever a previous run left behind and reports what
// the recovery did.
//
// -guard runs the guardrail chaos experiment instead: one workload, two
// arms under an identical seeded storage.view.read fault storm targeting one
// VC's views — unguarded vs guarded by the circuit-breaker / kill-switch
// subsystem — and prints the comparison figure plus the guard's decision
// log. The unguarded arm's SLO verdict regresses; the guarded arm's stays
// green.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cloudviews/internal/experiments"
	"cloudviews/internal/fault"
	"cloudviews/internal/storage"
	"cloudviews/internal/storage/durable"
	"cloudviews/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale factor (1.0 = paper-sized deployment)")
	days := flag.Int("days", 0, "override window length in days (0 = scaled default)")
	series := flag.Bool("series", false, "print the full Figure 6/7 daily series")
	seed := flag.Uint64("seed", 0, "override workload seed")
	metrics := flag.Bool("metrics", false, "print the CloudViews arm's system-metrics export")
	metricsBoth := flag.Bool("metrics-both", false, "print BOTH arms' system-metrics exports side by side")
	explainFlag := flag.Bool("explain", false, "print the CloudViews arm's fleet-wide reuse miss-reason rollup")
	report := flag.String("report", "", "write the cvdash HTML health report to this path")
	faults := flag.String("faults", "", `fault spec, e.g. "stage=0.05,read=0.02,seed=7" (empty = no injection)`)
	faultSeed := flag.Uint64("faultseed", 0, "override the fault-injection seed (0 = keep spec's seed)")
	store := flag.String("store", "mem", `view-store backend: "mem" (in-memory) or "disk" (durable WAL+snapshot)`)
	datadir := flag.String("datadir", "cvsim-data", "data directory for -store=disk (one subdirectory per arm)")
	guardFlag := flag.Bool("guard", false, "run the guarded-vs-unguarded fault-storm chaos experiment instead of the production window")
	flag.Parse()

	if *guardFlag {
		runGuardExperiment(*scale, *days, *seed, *faultSeed)
		return
	}

	cfg := experiments.DefaultProduction()
	if *scale < 1.0 {
		cfg = cfg.Scale(*scale)
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Profile.Seed = *seed
	}
	if *faults != "" {
		fcfg, err := fault.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cvsim: -faults: %v\n", err)
			os.Exit(2)
		}
		if *faultSeed != 0 {
			fcfg.Seed = *faultSeed
		}
		cfg.Faults = fcfg
	}
	switch *store {
	case "mem":
	case "disk":
		cfg.StoreFactory = func(arm string) (storage.Engine, error) {
			eng, err := durable.Open(filepath.Join(*datadir, arm), durable.Options{})
			if err != nil {
				return nil, err
			}
			rec := eng.Recovery()
			fmt.Printf("cvsim: %s view store recovered: %d views (%d snapshot, %d WAL records, %d torn tails dropped, %d in-flight abandoned)\n",
				arm, rec.ViewsRecovered, rec.SnapshotsLoaded, rec.RecordsReplayed, rec.TornTailsTruncated, rec.InFlightAbandoned)
			return eng, nil
		}
	default:
		fmt.Fprintf(os.Stderr, "cvsim: -store must be \"mem\" or \"disk\", got %q\n", *store)
		os.Exit(2)
	}

	fmt.Printf("cvsim: %d pipelines, %d VCs, %d days (scale %.2f)\n",
		cfg.Profile.Pipelines, cfg.Profile.VCs, cfg.Days, *scale)
	start := time.Now()
	res, err := experiments.RunProduction(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cvsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("completed in %v\n\n", time.Since(start).Round(time.Millisecond))

	if cfg.Faults.Enabled() {
		var jr, sr, bp, rf int
		var fd float64
		for _, d := range res.Days {
			jr += d.CV.JobRetries
			sr += d.CV.StageRetries
			bp += d.CV.BonusPreemptions
			rf += d.CV.ReuseFallbacks
			fd += d.CV.FaultDelaySec
		}
		fmt.Printf("faults (%s): %d job retries, %d stage retries, %d preemptions, %d reuse fallbacks, %.0fs recovery delay\n\n",
			cfg.Faults.Spec(), jr, sr, bp, rf, fd)
	}

	baseVerdict, cvVerdict := res.Verdicts()
	fmt.Printf("SLO verdicts: baseline %s, cloudviews %s\n\n", baseVerdict, cvVerdict)

	fmt.Println(experiments.RenderTable1(res.Table1))
	if *series {
		fmt.Println(experiments.RenderFigure6(res))
		fmt.Println(experiments.RenderFigure7(res))
	} else {
		// Print first/last rows so the shape is visible without -series.
		fmt.Println("(run with -series for the full Figure 6/7 daily series)")
	}
	if *metrics && !*metricsBoth {
		fmt.Println("\nSYSTEM METRICS (CloudViews arm, Prometheus text format)")
		fmt.Print(res.Metrics)
	}
	if *metricsBoth {
		fmt.Println("\nSYSTEM METRICS (baseline arm, Prometheus text format)")
		fmt.Print(res.BaseMetrics)
		fmt.Println("\nSYSTEM METRICS (CloudViews arm, Prometheus text format)")
		fmt.Print(res.Metrics)
	}
	if *explainFlag {
		fmt.Println()
		fmt.Print(telemetry.BuildExplainRollup(res.CVTelemetry).RenderExplainText())
	}
	if *report != "" {
		if err := os.WriteFile(*report, []byte(res.Report().RenderHTML()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cvsim: -report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote health report to %s\n", *report)
	}
}

// runGuardExperiment is the -guard mode: the guarded-vs-unguarded chaos
// comparison, printed as the figure the CI chaos gate uploads.
func runGuardExperiment(scale float64, days int, seed, faultSeed uint64) {
	cfg := experiments.DefaultGuardComparison()
	if scale < 1.0 {
		cfg = cfg.Scale(scale)
	}
	if days > 0 {
		cfg.Days = days
	}
	if seed != 0 {
		cfg.Profile.Seed = seed
	}
	if faultSeed != 0 {
		cfg.FaultSeed = faultSeed
	}
	fmt.Printf("cvsim -guard: %d pipelines, %d VCs, %d days (scale %.2f)\n",
		cfg.Profile.Pipelines, cfg.Profile.VCs, cfg.Days, scale)
	start := time.Now()
	res, err := experiments.RunGuardComparison(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cvsim: -guard: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("completed in %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(experiments.RenderGuardFigure(res))
}
