// Command cvserve runs the CloudViews multi-tenant network front end: a
// long-lived HTTP service wrapping one cloudviews.System with per-VC
// bearer-token authentication, token-bucket rate limiting, and queue-depth
// admission control that sheds load with 429 before the async submission
// workers saturate.
//
// Usage:
//
//	cvserve -tokens "vc1=sekrit1,vc2=sekrit2" -admin-token root
//	        [-addr :8080] [-cluster prod] [-rate 100] [-burst 200]
//	        [-max-queue 64] [-max-queue-global 1024]
//	        [-store mem|disk] [-datadir DIR] [-demo] [-pprof]
//
// -demo publishes a small Events dataset and onboards every configured VC,
// so a fresh server answers queries immediately:
//
//	curl -s -H 'Authorization: Bearer sekrit1' -d '{
//	  "script": "r = SELECT Region, COUNT(*) AS n FROM Events GROUP BY Region; OUTPUT r TO \"out/r\";"
//	}' localhost:8080/v1/jobs
//
// Endpoints: POST /v1/jobs (sync, or async with "async": true), GET
// /v1/jobs/{id} (?wait=1 long-polls, ?rows=N inlines result rows), GET
// /v1/jobs/{id}/trace, GET /metrics (Prometheus), GET /dash (live HTML
// dashboard), GET /healthz, and under the admin token POST
// /admin/vcs/{vc}/onboard, /admin/vcs/{vc}/offboard, /admin/analyze,
// /admin/runday, /admin/advance, /admin/slo/sample. GET /v1/jobs/{id}/explain
// returns the structured reuse-provenance report and GET /admin/explain the
// fleet-wide miss-reason rollup; -pprof additionally mounts net/http/pprof at
// /admin/debug/pprof/ behind the admin token.
//
// On SIGINT/SIGTERM the server stops accepting, drains the async workers,
// and closes the storage engine, in that order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cloudviews"
	"cloudviews/internal/server"
	"cloudviews/internal/storage/durable"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cluster := flag.String("cluster", "cvserve", "cluster name (scopes signatures)")
	capacity := flag.Int("capacity", 1000, "cluster container capacity")
	tokens := flag.String("tokens", "", `per-VC bearer tokens, "vc1=tok1,vc2=tok2"`)
	adminToken := flag.String("admin-token", "", "admin bearer token (empty disables /admin)")
	rate := flag.Float64("rate", 0, "per-tenant submissions/sec (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-tenant burst capacity (0 = max(1, rate))")
	maxQueue := flag.Int("max-queue", 64, "per-VC in-flight submission cap")
	maxQueueGlobal := flag.Int("max-queue-global", 1024, "server-wide in-flight submission cap")
	store := flag.String("store", "mem", `view-store backend: "mem" or "disk" (durable WAL+snapshot)`)
	datadir := flag.String("datadir", "cvserve-data", "data directory for -store=disk")
	demo := flag.Bool("demo", false, "publish a demo Events dataset and onboard every configured VC")
	pprof := flag.Bool("pprof", false, "expose net/http/pprof under the admin token at /admin/debug/pprof/")
	flag.Parse()

	if err := run(*addr, *cluster, *capacity, *tokens, *adminToken, *rate, *burst,
		*maxQueue, *maxQueueGlobal, *store, *datadir, *demo, *pprof); err != nil {
		fmt.Fprintf(os.Stderr, "cvserve: %v\n", err)
		os.Exit(1)
	}
}

// parseTokens parses "vc1=tok1,vc2=tok2" into token → VC.
func parseTokens(spec string) (map[string]string, error) {
	out := make(map[string]string)
	if spec == "" {
		return out, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		vc, tok, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || vc == "" || tok == "" {
			return nil, fmt.Errorf("bad -tokens entry %q (want vc=token)", pair)
		}
		if prev, dup := out[tok]; dup {
			return nil, fmt.Errorf("token for %q already assigned to %q", vc, prev)
		}
		out[tok] = vc
	}
	return out, nil
}

func run(addr, cluster string, capacity int, tokenSpec, adminToken string,
	rate, burst float64, maxQueue, maxQueueGlobal int, store, datadir string, demo, pprof bool) error {
	tokens, err := parseTokens(tokenSpec)
	if err != nil {
		return err
	}
	if len(tokens) == 0 && adminToken == "" {
		return errors.New("no -tokens and no -admin-token: nobody could authenticate")
	}

	cfg := cloudviews.Config{ClusterName: cluster, Capacity: capacity}
	var closeStorage func() error
	switch store {
	case "mem":
	case "disk":
		eng, err := durable.Open(datadir, durable.Options{})
		if err != nil {
			return fmt.Errorf("open durable store: %w", err)
		}
		rec := eng.Recovery()
		fmt.Printf("cvserve: view store recovered: %d views (%d snapshot, %d WAL records, %d torn tails dropped, %d in-flight abandoned)\n",
			rec.ViewsRecovered, rec.SnapshotsLoaded, rec.RecordsReplayed, rec.TornTailsTruncated, rec.InFlightAbandoned)
		cfg.StorageEngine = eng
		closeStorage = eng.Close
	default:
		return fmt.Errorf(`-store must be "mem" or "disk", got %q`, store)
	}

	sys, err := cloudviews.NewSystem(cfg)
	if err != nil {
		return err
	}
	if demo {
		if err := publishDemo(sys); err != nil {
			return err
		}
		for _, vc := range tokens {
			sys.OnboardVC(vc)
		}
	}

	srv, err := server.New(server.Config{
		System:             sys,
		Tokens:             tokens,
		AdminToken:         adminToken,
		Rate:               rate,
		Burst:              burst,
		MaxQueuedPerTenant: maxQueue,
		MaxQueued:          maxQueueGlobal,
		CloseStorage:       closeStorage,
		EnablePprof:        pprof,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("cvserve: listening on %s (%d tenants, store=%s)\n", addr, len(tokens), store)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful stop: close the listener and wait for in-flight handlers,
	// then drain workers and close storage (srv.Shutdown's ordering).
	fmt.Println("cvserve: shutting down (stop accepting → drain workers → close storage)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return srv.Shutdown()
}

// publishDemo registers the Events dataset the README quick-start queries.
func publishDemo(sys *cloudviews.System) error {
	schema := cloudviews.Schema{
		{Name: "Id", Kind: cloudviews.KindInt},
		{Name: "Region", Kind: cloudviews.KindString},
		{Name: "Value", Kind: cloudviews.KindFloat},
	}
	if err := sys.DefineDataset("Events", schema); err != nil {
		return err
	}
	tb := &cloudviews.Table{Schema: schema}
	regions := []string{"us", "eu", "asia"}
	for i := 0; i < 300; i++ {
		tb.Append(cloudviews.Row{
			cloudviews.Int(int64(i)),
			cloudviews.String(regions[i%3]),
			cloudviews.Float(float64(i % 97)),
		})
	}
	if err := sys.PublishDataset("Events", tb); err != nil {
		return err
	}
	sys.SetScaleFactor("Events", 10_000)
	return nil
}
