package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report")

// TestReportGolden pins the full insights report byte-for-byte so formatting
// changes show up as reviewable diffs. Regenerate with:
//
//	go test ./cmd/cvinsights -run Golden -update
func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2, 0.3, 10); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestReportDeterministic guards the golden test itself: two runs with the
// same parameters must emit identical bytes (the report iterates maps, so
// every listing needs a total order).
func TestReportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, 1, 0.3, 5); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, 1, 0.3, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("report is nondeterministic across runs")
	}
}
