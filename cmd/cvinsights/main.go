// Command cvinsights is the analogue of the SparkCruise "Workload Insights
// Notebook" (paper §5.5): it analyzes a workload's telemetry and prints the
// aggregate statistics and redundancy report that help a customer decide
// whether enabling computation reuse would pay off — "the results from the
// notebook can convince the users to enable the computation reuse feature on
// their workloads".
//
// Usage:
//
//	cvinsights [-days 3] [-scale 0.5] [-top 15]
//
// The tool generates a representative cluster workload, records its
// compile-time telemetry, and reports: workload composition, subexpression
// overlap, the top reuse candidates with expected savings, and per-VC
// breakdowns.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cloudviews/internal/analysis"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/compress"
	"cloudviews/internal/core"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/lineage"
	"cloudviews/internal/workload"
)

func main() {
	days := flag.Int("days", 3, "telemetry window in days")
	scale := flag.Float64("scale", 0.5, "workload scale (1.0 = paper-sized cluster)")
	top := flag.Int("top", 15, "top candidates to display")
	flag.Parse()
	if err := run(os.Stdout, *days, *scale, *top); err != nil {
		fmt.Fprintf(os.Stderr, "cvinsights: %v\n", err)
		os.Exit(1)
	}
}

// run produces the full insights report on w. Extracted from main so the
// report format can be golden-tested.
func run(w io.Writer, days int, scale float64, top int) error {
	profile := workload.DefaultProfile("Insights")
	profile.Pipelines = int(float64(profile.Pipelines) * 2 * scale)
	if profile.Pipelines < 10 {
		profile.Pipelines = 10
	}

	cat := catalog.New()
	gen := workload.NewGenerator(cat, profile)
	if err := gen.Bootstrap(); err != nil {
		return err
	}
	var vcCfgs []cluster.VCConfig
	for _, vc := range gen.VCNames() {
		vcCfgs = append(vcCfgs, cluster.VCConfig{Name: vc, Tokens: 40})
	}
	eng := core.NewEngine(core.Config{
		ClusterName: profile.Name,
		Catalog:     cat,
		ClusterCfg:  cluster.Config{Capacity: 400, VCs: vcCfgs},
	})

	fmt.Fprintf(w, "collecting %d day(s) of workload telemetry from %d pipelines...\n\n", days, profile.Pipelines)
	for day := 0; day < days; day++ {
		if day > 0 {
			if err := gen.AdvanceDay(day); err != nil {
				return err
			}
		}
		if _, err := eng.RunDay(day, gen.JobsForDay(day)); err != nil {
			return err
		}
	}

	from := fixtures.Epoch
	to := fixtures.Epoch.AddDate(0, 0, days)
	repo := eng.Repo

	// --- Workload composition -------------------------------------------
	jobs := repo.JobsBetween(from, to)
	pipelines := map[string]bool{}
	users := map[string]bool{}
	vcs := map[string]bool{}
	templates := map[string]int{}
	var totalWork float64
	for _, j := range jobs {
		pipelines[j.Pipeline] = true
		users[j.User] = true
		vcs[j.VC] = true
		templates[string(j.Template)]++
		totalWork += j.ProcessingSec
	}
	recurringJobs := 0
	for _, n := range templates {
		if n > 1 {
			recurringJobs += n
		}
	}
	fmt.Fprintln(w, "WORKLOAD COMPOSITION")
	fmt.Fprintf(w, "  jobs                 %8d\n", len(jobs))
	fmt.Fprintf(w, "  pipelines            %8d\n", len(pipelines))
	fmt.Fprintf(w, "  users                %8d\n", len(users))
	fmt.Fprintf(w, "  virtual clusters     %8d\n", len(vcs))
	fmt.Fprintf(w, "  subexpressions       %8d\n", repo.SubexprCount())
	fmt.Fprintf(w, "  recurring job share  %7.1f%%\n", 100*float64(recurringJobs)/float64(len(jobs)))
	fmt.Fprintf(w, "  total processing     %8.0f container-sec\n\n", totalWork)

	// --- Redundancy -------------------------------------------------------
	groups := repo.GroupByRecurring(from, to)
	instances, repeated, reusable := 0, 0, 0
	for _, g := range groups {
		instances += g.Count
		if g.Count > 1 {
			repeated += g.Count
		}
		if g.Count-g.DistinctStrict > 0 && g.Eligible {
			reusable += g.Count - g.DistinctStrict
		}
	}
	fmt.Fprintln(w, "REDUNDANCY")
	fmt.Fprintf(w, "  distinct subexpressions      %8d\n", len(groups))
	fmt.Fprintf(w, "  repeated instances           %7.1f%%\n", 100*float64(repeated)/float64(instances))
	fmt.Fprintf(w, "  avg repeat frequency         %8.2f\n", float64(instances)/float64(len(groups)))
	fmt.Fprintf(w, "  reusable instances (exact)   %8d\n\n", reusable)

	// --- Candidates -------------------------------------------------------
	byVC, rejected := analysis.SelectViews(repo, from, to, analysis.SelectionConfig{
		ScheduleAware: true, UseBigSubs: true,
	})
	type flat struct {
		vc string
		c  analysis.Candidate
	}
	var all []flat
	var expectedSavings float64
	for vc, cands := range byVC {
		for _, c := range cands {
			all = append(all, flat{vc, c})
			expectedSavings += c.Utility
		}
	}
	// Full ordering (not just utility) so the report is byte-stable across
	// runs: `all` is assembled from map iteration.
	sort.Slice(all, func(i, j int) bool {
		if all[i].c.Utility != all[j].c.Utility {
			return all[i].c.Utility > all[j].c.Utility
		}
		if all[i].vc != all[j].vc {
			return all[i].vc < all[j].vc
		}
		return all[i].c.Recurring < all[j].c.Recurring
	})

	fmt.Fprintln(w, "TOP REUSE CANDIDATES (expected per-window savings)")
	fmt.Fprintln(w, "  rank  op         freq  utility(cs)  storage(MB)  vc")
	for i, f := range all {
		if i >= top {
			break
		}
		fmt.Fprintf(w, "  %4d  %-9s %5d  %11.1f  %11.1f  %s\n",
			i+1, f.c.Op, f.c.Frequency, f.c.Utility, float64(f.c.StorageCost)/1e6, f.vc)
	}
	fmt.Fprintf(w, "\n  candidates selected: %d (%d rejected as schedule-concurrent)\n", len(all), rejected)
	if totalWork > 0 {
		fmt.Fprintf(w, "  expected compute savings if enabled: %.0f container-sec (%.1f%% of the window)\n",
			expectedSavings, 100*expectedSavings/totalWork)
	}

	// --- Per-VC breakdown --------------------------------------------------
	fmt.Fprintln(w, "\nPER-VC BREAKDOWN")
	vcNames := make([]string, 0, len(byVC))
	for vc := range byVC {
		vcNames = append(vcNames, vc)
	}
	sort.Strings(vcNames)
	for _, vc := range vcNames {
		var u float64
		var storageNeed int64
		for _, c := range byVC[vc] {
			u += c.Utility
			storageNeed += c.StorageCost
		}
		fmt.Fprintf(w, "  %-18s %3d views, %10.1f cs saved, %8.1f MB storage\n",
			vc, len(byVC[vc]), u, float64(storageNeed)/1e6)
	}
	// --- Lineage (§5.2 dependency surfacing) -------------------------------
	producers := map[string]string{}
	for _, name := range cat.Names() {
		if ds, ok := cat.Dataset(name); ok && ds.Producer() != "" {
			producers[name] = ds.Producer()
		}
	}
	g := lineage.Build(repo, from, to, producers)
	fmt.Fprintln(w, "\nPIPELINE DEPENDENCIES")
	fmt.Fprintf(w, "  datasets in the graph         %6d\n", len(g.Datasets))
	fmt.Fprintf(w, "  pipelines depending on others %5.1f%%  (paper: ~80%%)\n", 100*g.DependentShare())
	recs := g.RecommendPhysicalDesigns(5)
	for i, rec := range recs {
		if i >= 5 {
			break
		}
		fmt.Fprintf(w, "  tailor %-22s for %2d consumers (%d reads) — %s\n",
			rec.Dataset, rec.Consumers, rec.Reads, "producer: "+rec.Producer)
	}

	// --- Workload compression (§5.2) ---------------------------------------
	cres := compress.Compress(repo, from, to, compress.Options{TargetCoverage: 0.95})
	fmt.Fprintln(w, "\nWORKLOAD COMPRESSION (pre-production representative set)")
	fmt.Fprintf(w, "  representative templates  %6d (%.1f%% of all templates)\n",
		len(cres.Representatives), 100*cres.CompressionRatio)
	fmt.Fprintf(w, "  subexpression coverage    %6d / %d\n", cres.CoveredSubexprs, cres.TotalSubexprs)
	if cres.TotalWork > 0 {
		fmt.Fprintf(w, "  weighted compute coverage %5.1f%%\n", 100*cres.CoveredWork/cres.TotalWork)
	}

	// --- System metrics (observability layer) ------------------------------
	// The export order is deterministic, so this section is golden-testable
	// like the rest of the report.
	fmt.Fprintln(w, "\nSYSTEM METRICS (Prometheus text format)")
	fmt.Fprint(w, eng.Metrics.ExportString())

	fmt.Fprintln(w, "\nverdict: enable CloudViews on the VCs above to capture these savings automatically.")
	return nil
}
