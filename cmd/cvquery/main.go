// Command cvquery runs a single SCOPE-like script end to end against the
// retail demo catalog (the paper's Figure 4 datasets), printing the compiled
// plan, subexpression signatures, reuse decisions, and the result. Submitting
// the same (or an overlapping) script again in one session demonstrates
// materialization and reuse.
//
// Usage:
//
//	cvquery [-script file.scope] [-n 2] [-show-rows 10] [-annotate] [-trace]
//	        [-explain]
//
// Without -script, the three Figure 4 analyst queries are run in sequence,
// after a workload-analysis pass primes the insights service. -explain prints
// each job's structured reuse-provenance report: one line per candidate view
// with its closed-enum reason (matched, no-annotation, cost, expired, ...)
// and the container-seconds banked or forfeited.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cloudviews/internal/analysis"
	"cloudviews/internal/core"
	"cloudviews/internal/exec"
	"cloudviews/internal/explain"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/insights"
	"cloudviews/internal/optimizer"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/stats"
	"cloudviews/internal/storage"
	"cloudviews/internal/storage/durable"
	"cloudviews/internal/workload"

	cluster "cloudviews/internal/cluster"
)

func main() {
	scriptPath := flag.String("script", "", "path to a SCOPE-like script (default: Figure 4 demo)")
	repeats := flag.Int("n", 2, "times to run the script(s); 2+ demonstrates reuse")
	showRows := flag.Int("show-rows", 8, "result rows to print")
	annotate := flag.Bool("annotate", false, "export the query annotations file for the first job's tag")
	trace := flag.Bool("trace", false, "print each job's execution trace (spans + view decisions)")
	explainFlag := flag.Bool("explain", false, "print each job's structured reuse-provenance report")
	flag.Parse()

	if err := run(os.Stdout, *scriptPath, *repeats, *showRows, *annotate, *trace, *explainFlag); err != nil {
		fmt.Fprintf(os.Stderr, "cvquery: %v\n", err)
		os.Exit(1)
	}
}

// run drives the whole session against w, so tests can golden the output.
func run(w io.Writer, scriptPath string, repeats, showRows int, annotate, trace, explainFlag bool) error {
	cat, err := fixtures.Retail(fixtures.DefaultRetail())
	if err != nil {
		return err
	}
	cat.SetScaleFactor("Sales", 100_000) // pretend Sales is production-sized

	eng := core.NewEngine(core.Config{
		ClusterName: "demo",
		Catalog:     cat,
		ClusterCfg:  cluster.Config{Capacity: 500},
		Selection:   analysis.SelectionConfig{MinFrequency: 2, UseBigSubs: true},
	})
	eng.OnboardVC("demo-vc")

	var scripts []string
	if scriptPath != "" {
		blob, err := os.ReadFile(scriptPath)
		if err != nil {
			return err
		}
		scripts = []string{string(blob)}
	} else {
		scripts = fixtures.Figure4Queries()
		fmt.Fprintln(w, "Running the paper's Figure 4 scenario: three analysts over shared Sales/Customer/Parts data.")
	}

	clock := fixtures.Epoch
	seq := 0
	for round := 0; round < repeats; round++ {
		fmt.Fprintf(w, "\n=== round %d ===\n", round+1)
		for i, src := range scripts {
			seq++
			in := workload.JobInput{
				ID:       fmt.Sprintf("cvquery-%03d", seq),
				Cluster:  "demo",
				VC:       "demo-vc",
				Pipeline: fmt.Sprintf("analyst-%d", i+1),
				User:     fmt.Sprintf("analyst-%d", i+1),
				Runtime:  "scope-r1",
				Script:   src,
				Submit:   clock,
				OptIn:    true,
			}
			clock = clock.Add(time.Minute)
			run, err := eng.CompileAndExecute(in)
			if err != nil {
				return err
			}
			printRun(w, run, showRows)
			if trace && run.Trace != nil {
				fmt.Fprint(w, run.Trace.Render())
			}
			if explainFlag {
				fmt.Fprint(w, explain.RenderDecisions(run.Input.ID, run.Explain.Decisions()))
			}
			if annotate && round == 0 && i == 0 {
				exportAnnotations(w, eng.Insights, run.Compile.Tag)
			}
		}
		// Between rounds, the feedback loop analyzes what it saw.
		tags, rejected := eng.RunAnalysis(fixtures.Epoch.Add(-time.Hour), clock.Add(time.Hour))
		fmt.Fprintf(w, "\n[analysis] published annotations for %d job tag(s); %d candidate(s) rejected as schedule-concurrent\n",
			tags, rejected)
	}

	u := eng.Insights.UsageSnapshot()
	fmt.Fprintf(w, "\nsession totals: views created=%d, views reused=%d, live views=%d\n",
		u.ViewsCreated, u.ViewsReused, eng.Store.Count())
	return nil
}

func printRun(w io.Writer, run *core.JobRun, showRows int) {
	cr := run.Compile
	fmt.Fprintf(w, "\n--- %s (tag %s) ---\n", run.Input.ID, cr.Tag)
	fmt.Fprint(w, plan.Format(cr.Plan))
	if len(cr.Matched) > 0 {
		for _, m := range cr.Matched {
			fmt.Fprintf(w, "REUSED view %s (replaced %s, %d logical rows)\n", m.Strict.Short(), m.ReplacedOp, m.Rows)
		}
	}
	if len(cr.Proposed) > 0 {
		for _, p := range cr.Proposed {
			fmt.Fprintf(w, "MATERIALIZING view %s -> %s\n", p.Strict.Short(), p.Path)
		}
	}
	printSignatures(w, cr)
	res := run.Exec
	fmt.Fprintf(w, "work=%.2f container-sec, input=%s, read=%s, spool=%.2f cs\n",
		res.TotalWork, mb(res.InputBytes), mb(res.TotalRead), res.SpoolWork)
	t := res.Table
	n := t.NumRows()
	fmt.Fprintf(w, "result: %d rows (%s)\n", n, t.Schema)
	for i := 0; i < n && i < showRows; i++ {
		fmt.Fprintln(w, "  "+t.Rows[i].String())
	}
	if n > showRows {
		fmt.Fprintf(w, "  ... %d more\n", n-showRows)
	}
}

func printSignatures(w io.Writer, cr *optimizer.CompileResult) {
	type row struct {
		op     string
		strict signature.Sig
		recur  signature.Sig
	}
	var rows []row
	plan.Walk(cr.Plan, func(n plan.Node) {
		if s, ok := cr.SigMap[n]; ok {
			rows = append(rows, row{n.OpName(), s, cr.RecurringMap[n]})
		}
	})
	fmt.Fprintln(w, "subexpression signatures (strict / recurring):")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s %s / %s\n", r.op, r.strict.Short(), r.recur.Short())
	}
}

func exportAnnotations(w io.Writer, svc *insights.Service, tag signature.Tag) {
	blob, err := svc.ExportAnnotationsFile(tag)
	if err != nil {
		fmt.Fprintf(w, "[annotations] none for %s yet (%v)\n", tag, err)
		return
	}
	fmt.Fprintf(w, "[annotations file for %s]\n%s\n", tag, blob)
}

func mb(b int64) string { return fmt.Sprintf("%.1f MB", float64(b)/1e6) }

// Interface assertions document the moving parts this tool exercises: both
// view-store backends satisfy the executor's read interface and the pluggable
// engine contract.
var (
	_ exec.ViewStore = (*storage.Store)(nil)
	_ exec.ViewStore = (*durable.Engine)(nil)
	_ storage.Engine = (*storage.Store)(nil)
	_ storage.Engine = (*durable.Engine)(nil)
	_                = stats.NewEstimator
)
