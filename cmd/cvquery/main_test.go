package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudviews/internal/explain"
)

var update = flag.Bool("update", false, "rewrite the golden explain report")

// TestExplainGolden pins the -explain text report byte-for-byte over the
// Figure 4 demo session: round one misses (no-annotation), the analysis pass
// publishes annotations, round two banks reuse. Regenerate with:
//
//	go test ./cmd/cvquery -run Golden -update
func TestExplainGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", 2, 0, false, false, true); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "explain_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("explain report drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExplainDeterministic: identical flags render identical bytes, and the
// session actually demonstrates the miss→analyze→match arc with closed-enum
// reasons.
func TestExplainDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "", 2, 0, false, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "", 2, 0, false, false, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("explain output is nondeterministic across runs")
	}
	out := a.String()
	if !strings.Contains(out, string(explain.ReasonNoAnnotation)) {
		t.Error("round-one decisions should include no-annotation misses")
	}
	if !strings.Contains(out, string(explain.ReasonMatched)) {
		t.Error("round-two decisions should include matched reuse")
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "explain cvquery-") {
			continue
		}
		if !strings.HasSuffix(line, "decisions") {
			t.Errorf("malformed explain header: %q", line)
		}
	}
}
