package cloudviews

// Lint-style guards for the reuse-provenance taxonomy (the explain layer's
// closed reason enum). Two invariants:
//
//  1. Every "view.rejected" trace event carries a reason= token that is a
//     member of the closed enum — no ad-hoc fmt.Sprintf reasons can sneak
//     back in (they historically drifted in casing and format).
//  2. The "view.rejected" event is emitted from exactly one place (the
//     optimizer's reject helper), so invariant 1 is checkable at the source
//     level too: a second emission site would bypass the choke point that
//     keeps trace bytes and structured decisions in lockstep.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cloudviews/internal/explain"
	"cloudviews/internal/obs"
)

// rejectedEmitterAllowlist lists the internal/-relative files allowed to
// contain the "view.rejected" literal. Only the optimizer's reject() choke
// point emits it; new emitters must route through that helper instead.
var rejectedEmitterAllowlist = map[string]string{
	"optimizer/optimizer.go": "the reject() choke point: trace event + structured decision together",
}

func TestViewRejectedReasonsAreClosedEnum(t *testing.T) {
	sys, err := NewSystem(Config{ClusterName: "lint-test", Capacity: 100, ViewTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	schema := Schema{
		{Name: "Id", Kind: KindInt},
		{Name: "Region", Kind: KindString},
		{Name: "Value", Kind: KindFloat},
	}
	if err := sys.DefineDataset("Events", schema); err != nil {
		t.Fatal(err)
	}
	tb := &Table{Schema: schema}
	regions := []string{"us", "eu", "asia"}
	for i := 0; i < 60; i++ {
		tb.Append(Row{Int(int64(i)), String(regions[i%3]), Float(float64(i % 17))})
	}
	if err := sys.PublishDataset("Events", tb); err != nil {
		t.Fatal(err)
	}
	sys.SetScaleFactor("Events", 10_000)
	sys.OnboardVC("vc1")
	script := `p = SELECT * FROM Events WHERE Value > 10;
		r = SELECT Region, COUNT(*) AS n FROM p GROUP BY Region;
		OUTPUT r TO "out/r";`
	// Cold round, analyze, build round, reuse round, then age the views out
	// so the expired rejection path fires too.
	var traces []*Trace
	submit := func(id string) {
		t.Helper()
		res, err := sys.SubmitScript(Job{ID: id, VC: "vc1", Pipeline: "p", Script: script})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil {
			t.Fatalf("no trace for %s", id)
		}
		traces = append(traces, res.Trace)
		sys.AdvanceClock(time.Minute)
	}
	submit("lint-a-0")
	submit("lint-a-0b")
	sys.Analyze(time.Hour)
	submit("lint-a-1") // builds the view
	submit("lint-a-2") // reuses it
	// Past the 1-hour TTL with the annotation still fresh: the artifact is
	// present but expired, the classic view.rejected reason=expired path.
	sys.AdvanceClock(2 * time.Hour)
	submit("lint-expired")

	events := 0
	for _, tr := range traces {
		tr.ForEachEvent(func(ev obs.Event) {
			if ev.Kind != "view.rejected" {
				return
			}
			events++
			idx := strings.Index(ev.Detail, "reason=")
			if idx < 0 {
				t.Errorf("view.rejected event without reason= token: %q", ev.Detail)
				return
			}
			reason, _, _ := strings.Cut(ev.Detail[idx+len("reason="):], " ")
			if !explain.Valid(explain.Reason(reason)) {
				t.Errorf("view.rejected reason %q is not in the closed enum (detail %q)", reason, ev.Detail)
			}
		})
	}
	if events == 0 {
		t.Fatal("workload emitted no view.rejected events; the lint is vacuous")
	}
}

func TestViewRejectedEmittedOnlyFromChokePoint(t *testing.T) {
	root := "internal"
	found := map[string]bool{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel := filepath.ToSlash(mustRel(t, root, path))
		for i, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "//") {
				continue
			}
			if idx := strings.Index(trimmed, "//"); idx >= 0 {
				trimmed = trimmed[:idx]
			}
			if !strings.Contains(trimmed, `"view.rejected"`) {
				continue
			}
			found[rel] = true
			if _, ok := rejectedEmitterAllowlist[rel]; !ok {
				t.Errorf("%s:%d: view.rejected emitted outside the optimizer choke point; route through reject() so the structured decision is recorded too: %s",
					path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rel := range rejectedEmitterAllowlist {
		if !found[rel] {
			t.Errorf("allowlisted emitter %s no longer mentions view.rejected; update the allowlist", rel)
		}
	}
}

func mustRel(t *testing.T, root, path string) string {
	t.Helper()
	rel, err := filepath.Rel(root, path)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}
