package cloudviews_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudviews"
)

const asyncScript = `p = SELECT * FROM Events WHERE Value > %d;
r = SELECT Region, COUNT(*) AS n FROM p GROUP BY Region;
OUTPUT r TO "out/r";`

func TestSubmitScriptAsync(t *testing.T) {
	sys := demoSystem(t)
	defer sys.Close()

	p, err := sys.SubmitScriptAsync(cloudviews.Job{
		ID: "async-1", VC: "vc1",
		Script: fmt.Sprintf(asyncScript, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != "async-1" {
		t.Errorf("pending ID = %q", p.ID())
	}
	res, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", res.Output.NumRows())
	}
	// Waiting twice is fine.
	res2, _ := p.Wait()
	if res2 != res {
		t.Error("second Wait returned a different result")
	}
}

// TestSubmitBatchMatchesSync submits the same mixed-VC batch synchronously
// on one system and via SubmitBatch on another; outputs must agree, and
// results must line up with the input slice.
func TestSubmitBatchMatchesSync(t *testing.T) {
	syncSys := demoSystem(t)
	asyncSys := demoSystem(t)
	defer asyncSys.Close()

	var jobs []cloudviews.Job
	for i := 0; i < 24; i++ {
		jobs = append(jobs, cloudviews.Job{
			ID:     fmt.Sprintf("batch-%02d", i),
			VC:     fmt.Sprintf("vc%d", i%4),
			Script: fmt.Sprintf(asyncScript, 5*(i%5)),
			Submit: cloudviews.Epoch.Add(time.Duration(i) * time.Second),
		})
	}

	want := make([]*cloudviews.JobResult, len(jobs))
	for i, j := range jobs {
		res, err := syncSys.SubmitScript(j)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	got, err := asyncSys.SubmitBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		if got[i] == nil {
			t.Fatalf("result %d missing", i)
		}
		if got[i].ID != jobs[i].ID {
			t.Errorf("result %d is for %q, want %q", i, got[i].ID, jobs[i].ID)
		}
		if gf, wf := got[i].Output.Fingerprint(), want[i].Output.Fingerprint(); gf != wf {
			t.Errorf("job %s: batch output diverges from sync submission", jobs[i].ID)
		}
	}
}

// TestSubmitBatchPartialFailure: bad jobs fail individually without sinking
// the batch.
func TestSubmitBatchPartialFailure(t *testing.T) {
	sys := demoSystem(t)
	defer sys.Close()

	jobs := []cloudviews.Job{
		{ID: "good", VC: "vc1", Script: fmt.Sprintf(asyncScript, 10)},
		{ID: "empty", VC: "vc1"}, // no script
		{ID: "broken", VC: "vc2", Script: `SELECT FROM nothing !!!;`},  // parse error
		{ID: "good2", VC: "vc2", Script: fmt.Sprintf(asyncScript, 20)}, // after the bad one
	}
	results, err := sys.SubmitBatch(jobs)
	if err == nil {
		t.Fatal("expected batch error")
	}
	if results[0] == nil || results[3] == nil {
		t.Error("good jobs must still produce results")
	}
	if results[1] != nil || results[2] != nil {
		t.Error("failed jobs must have nil results")
	}
}

// TestAsyncPerVCOrdering: jobs on one VC execute in submission order even
// with concurrent submitters on other VCs. The workload repository records
// jobs in execution-completion order, so the relative order of one VC's
// records is the order its worker ran them.
func TestAsyncPerVCOrdering(t *testing.T) {
	sys := demoSystem(t)
	defer sys.Close()

	const perVC = 20
	for i := 0; i < perVC; i++ {
		if _, err := sys.SubmitScriptAsync(cloudviews.Job{
			ID: fmt.Sprintf("ord-%02d", i), VC: "vc-ordered",
			Script: fmt.Sprintf(asyncScript, i%7),
			Submit: cloudviews.Epoch.Add(time.Duration(i) * time.Second),
		}); err != nil {
			t.Fatal(err)
		}
		// Noise VCs churn concurrently with the ordered stream.
		if _, err := sys.SubmitScriptAsync(cloudviews.Job{
			VC: fmt.Sprintf("noise-%d", i%3), Script: fmt.Sprintf(asyncScript, i%5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Drain()

	var ordered []string
	for _, rec := range sys.Engine().Repo.Jobs() {
		if rec.VC == "vc-ordered" {
			ordered = append(ordered, rec.JobID)
		}
	}
	if len(ordered) != perVC {
		t.Fatalf("recorded %d ordered jobs, want %d", len(ordered), perVC)
	}
	for i, id := range ordered {
		if want := fmt.Sprintf("ord-%02d", i); id != want {
			t.Fatalf("per-VC FIFO violated: position %d ran %s, want %s (full order: %v)", i, id, want, ordered)
		}
	}
}

// TestConcurrentSyncSubmitters hammers SubmitScript from many goroutines —
// the simplest contract: no races, correct per-job answers.
func TestConcurrentSyncSubmitters(t *testing.T) {
	sys := demoSystem(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := sys.SubmitScript(cloudviews.Job{
					VC:     fmt.Sprintf("vc%d", w%4),
					Script: fmt.Sprintf(asyncScript, 10*(i%3)),
				})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Output.NumRows() != 3 {
					t.Errorf("rows = %d, want 3", res.Output.NumRows())
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCloseStopsAsync(t *testing.T) {
	sys := demoSystem(t)
	p, err := sys.SubmitScriptAsync(cloudviews.Job{VC: "vc1", Script: fmt.Sprintf(asyncScript, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys.Close() // idempotent
	if _, err := sys.SubmitScriptAsync(cloudviews.Job{VC: "vc1", Script: fmt.Sprintf(asyncScript, 10)}); err == nil {
		t.Error("async submission after Close must fail")
	}
	// Sync path still works after Close.
	if _, err := sys.SubmitScript(cloudviews.Job{VC: "vc1", Script: fmt.Sprintf(asyncScript, 10)}); err != nil {
		t.Errorf("sync submission after Close: %v", err)
	}
}

// TestCloseRacesSubmitters: goroutines hammer SubmitScriptAsync while Close
// runs concurrently. The shutdown contract: every accepted submission (a
// non-error Pending) completes — and has completed by the time Close returns
// (the flush guarantee) — and every rejected one fails with ErrClosed, never
// a hung Pending or a silent drop.
func TestCloseRacesSubmitters(t *testing.T) {
	sys := demoSystem(t)

	const workers = 8
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted []*cloudviews.Pending
		rejected atomic.Int64
	)
	// One submission lands before the race starts: the accepted-path
	// assertions below can never be vacuous, however the Close race falls.
	first, err := sys.SubmitScriptAsync(cloudviews.Job{VC: "vc0", Script: fmt.Sprintf(asyncScript, 0)})
	if err != nil {
		t.Fatal(err)
	}
	accepted = append(accepted, first)

	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 10; i++ {
				p, err := sys.SubmitScriptAsync(cloudviews.Job{
					VC:     fmt.Sprintf("vc%d", w%3),
					Script: fmt.Sprintf(asyncScript, i%5),
				})
				if err != nil {
					if !errors.Is(err, cloudviews.ErrClosed) {
						t.Errorf("submission failed with %v, want ErrClosed", err)
					}
					rejected.Add(1)
					continue
				}
				mu.Lock()
				accepted = append(accepted, p)
				mu.Unlock()
			}
		}(w)
	}
	closed := make(chan struct{})
	go func() {
		<-start
		sys.Close()
		close(closed)
	}()
	close(start)
	wg.Wait()
	<-closed

	// Close returned, so every accepted Pending must already be resolved.
	for i, p := range accepted {
		select {
		case <-p.Done():
		default:
			t.Fatalf("pending %d (%s) not resolved after Close returned", i, p.ID())
		}
		if _, err := p.Wait(); err != nil {
			t.Errorf("accepted job %s failed: %v", p.ID(), err)
		}
	}
	t.Logf("accepted %d, rejected %d", len(accepted), rejected.Load())

	if _, err := sys.SubmitScriptAsync(cloudviews.Job{VC: "vc1", Script: fmt.Sprintf(asyncScript, 1)}); !errors.Is(err, cloudviews.ErrClosed) {
		t.Errorf("post-close submission error = %v, want ErrClosed", err)
	}
}
