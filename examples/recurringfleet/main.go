// Recurringfleet: a multi-day recurring workload through the full feedback
// loop — the miniature version of the paper's production deployment.
//
// A generated fleet of recurring pipelines (cooking + analytics with shared
// prefixes + ad-hoc noise) runs for a week, twice: once as baseline and once
// with CloudViews enabled after a two-day onboarding ramp. The daily output
// mirrors Figures 6a–6c: views built/reused and the latency and processing
// improvements as the feedback loop warms up.
//
// Run with: go run ./examples/recurringfleet
package main

import (
	"fmt"
	"log"

	"cloudviews/internal/analysis"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/core"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/workload"
)

const days = 7

func main() {
	profile := workload.DefaultProfile("fleet")
	profile.Pipelines = 40
	profile.PrefixPool = 16
	profile.RowsPerRawDay = 250

	base := runArm(profile, false)
	cv := runArm(profile, true)

	fmt.Println("day  jobs  built reused |   latency(s) base → cv    |  processing(cs) base → cv")
	var bl, cl, bp, cp float64
	for d := 0; d < days; d++ {
		bl += base[d].LatencySec
		cl += cv[d].LatencySec
		bp += base[d].ProcessingSec
		cp += cv[d].ProcessingSec
		fmt.Printf("%3d  %4d  %5d %6d | %11.0f → %-11.0f | %12.0f → %-12.0f\n",
			d, cv[d].Jobs, cv[d].ViewsBuilt, cv[d].ViewsReused,
			base[d].LatencySec, cv[d].LatencySec,
			base[d].ProcessingSec, cv[d].ProcessingSec)
	}
	fmt.Printf("\ncumulative: latency %.1f%% better, processing %.1f%% better\n",
		100*(bl-cl)/bl, 100*(bp-cp)/bp)
}

func runArm(profile workload.ClusterProfile, enable bool) []core.DayMetrics {
	cat := catalog.New()
	gen := workload.NewGenerator(cat, profile)
	if err := gen.Bootstrap(); err != nil {
		log.Fatal(err)
	}
	var vcCfgs []cluster.VCConfig
	for _, vc := range gen.VCNames() {
		vcCfgs = append(vcCfgs, cluster.VCConfig{Name: vc, Tokens: 30})
	}
	eng := core.NewEngine(core.Config{
		ClusterName: profile.Name,
		Catalog:     cat,
		ClusterCfg:  cluster.Config{Capacity: 300, VCs: vcCfgs},
		Selection:   analysis.SelectionConfig{ScheduleAware: true, UseBigSubs: true},
	})

	var out []core.DayMetrics
	for day := 0; day < days; day++ {
		if day > 0 {
			if err := gen.AdvanceDay(day); err != nil {
				log.Fatal(err)
			}
		}
		// Opt-in ramp: half the VCs on day 1, all from day 2.
		if enable && day >= 1 {
			names := gen.VCNames()
			limit := len(names)
			if day == 1 {
				limit = (len(names) + 1) / 2
			}
			for _, vc := range names[:limit] {
				eng.OnboardVC(vc)
			}
		}
		m, err := eng.RunDay(day, gen.JobsForDay(day))
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, m)
		if enable {
			to := fixtures.Epoch.AddDate(0, 0, day+1)
			eng.RunAnalysis(to.AddDate(0, 0, -7), to)
		}
	}
	return out
}
