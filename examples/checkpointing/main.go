// Checkpointing: the §5.6 extension — the CloudViews mechanism pointed at
// automatic checkpoint/restart.
//
// A long analytical job has a history of failing in its aggregation stage.
// The failure model (learned from query history) plants a checkpoint just
// below the risky operator; when the job fails and is resubmitted, the
// checkpoint is loaded through the ordinary view-matching machinery instead
// of recomputing the whole DAG from scratch.
//
// Run with: go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"
	"time"

	"cloudviews/internal/checkpoint"
	"cloudviews/internal/exec"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/sqlparser"
	"cloudviews/internal/storage"
)

const job = `big = SELECT CustomerId, PartId, Price * Quantity AS revenue
	FROM Sales JOIN Customer ON Sales.CustomerId = Customer.Id
	WHERE Quantity > 1;
res = SELECT PartId, SUM(revenue) AS total, COUNT(*) AS n
	FROM big GROUP BY PartId;
OUTPUT res TO "out/revenue_by_part";`

func main() {
	cat, err := fixtures.Retail(fixtures.DefaultRetail())
	if err != nil {
		log.Fatal(err)
	}
	cat.SetScaleFactor("Sales", 200_000) // a long-running production job

	script, err := sqlparser.Parse(job)
	if err != nil {
		log.Fatal(err)
	}
	binder := &plan.Binder{Catalog: cat}
	outs, err := binder.BindScript(script)
	if err != nil {
		log.Fatal(err)
	}
	root := plan.Node(outs[0])

	signer := &signature.Signer{EngineVersion: "cp-demo"}
	store := storage.NewStore(func() time.Time { return fixtures.Epoch })

	// Query history says aggregations fail ~20% of the time on this cluster
	// (capacity loss, storage timeouts, ...).
	stats := checkpoint.NewFailureStats()
	for i := 0; i < 50; i++ {
		stats.Observe("Aggregate", i%5 == 0)
		stats.Observe("Join", false)
		stats.Observe("Scan", false)
	}
	fmt.Printf("learned failure rates: Aggregate=%.0f%% Join=%.0f%%\n",
		100*stats.Rate("Aggregate"), 100*stats.Rate("Join"))

	// Attempt 1: instrumented with a checkpoint below the aggregation.
	instrumented, placements := checkpoint.Instrument(root, signer, stats, store, "vc1", checkpoint.Policy{})
	for _, p := range placements {
		fmt.Printf("checkpoint planted below %-10s -> %s\n", p.Below, p.Path)
	}
	ex := &exec.Executor{Catalog: cat, Views: store}
	attempt1, err := ex.Run(instrumented)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range placements {
		store.Seal(p.Strict) // early sealing: the artifact survives the crash
	}
	fmt.Printf("\nattempt 1 ran %.0f container-sec, then FAILED in the aggregation (simulated)\n",
		attempt1.TotalWork)

	// Attempt 2, naive: recompute everything.
	naive, err := (&exec.Executor{Catalog: cat, Views: store}).Run(root)
	if err != nil {
		log.Fatal(err)
	}

	// Attempt 2, with recovery: the checkpointed subexpression is loaded.
	recovered, n := checkpoint.Recover(root, signer, store)
	fmt.Printf("\nresubmission recovered %d checkpoint(s); plan now:\n%s", n, plan.Format(recovered))
	smart, err := (&exec.Executor{Catalog: cat, Views: store}).Run(recovered)
	if err != nil {
		log.Fatal(err)
	}

	if naive.Table.Fingerprint() != smart.Table.Fingerprint() {
		log.Fatal("recovery changed the results!")
	}
	fmt.Printf("\nrestart cost: %.0f container-sec from scratch vs %.0f with the checkpoint (%.0f%% saved)\n",
		naive.TotalWork, smart.TotalWork, 100*(naive.TotalWork-smart.TotalWork)/naive.TotalWork)
}
