// Datacooking: the §2 enterprise pattern, end to end.
//
// Raw telemetry is ingested daily; cooking jobs extract, transform, and
// correlate it into cooked shared datasets (published through the engine's
// dataset: output scheme); downstream consumers from different teams analyze
// the cooked data. CloudViews then AUGMENTS the cooking: the shared
// downstream subexpressions nobody hand-curated get materialized and reused
// automatically — "computation reuse can fill the gaps in data cooking".
//
// Run with: go run ./examples/datacooking
package main

import (
	"fmt"
	"log"
	"time"

	"cloudviews"
)

var rawSchema = cloudviews.Schema{
	{Name: "Ts", Kind: cloudviews.KindTime},
	{Name: "UserId", Kind: cloudviews.KindInt},
	{Name: "Region", Kind: cloudviews.KindString},
	{Name: "EventType", Kind: cloudviews.KindString},
	{Name: "Value", Kind: cloudviews.KindFloat},
}

func main() {
	sys, err := cloudviews.NewSystem(cloudviews.Config{ClusterName: "cooking-demo", Capacity: 300})
	if err != nil {
		log.Fatal(err)
	}
	sys.OnboardVC("bing")
	sys.OnboardVC("office")

	// 1. Ingestion: two raw telemetry streams land in the store.
	for _, name := range []string{"BingClicks", "OfficeEvents"} {
		if err := sys.DefineDataset(name, rawSchema); err != nil {
			log.Fatal(err)
		}
		if err := sys.PublishDataset(name, syntheticTelemetry(name)); err != nil {
			log.Fatal(err)
		}
		sys.SetScaleFactor(name, 500_000) // petabyte-ish logical scale
	}
	// The cooked dataset the cooking pipeline will produce.
	if err := sys.DefineDataset("CookedEvents", rawSchema); err != nil {
		log.Fatal(err)
	}
	sys.SetScaleFactor("CookedEvents", 200_000)

	// 2. Cooking: extract + union + normalize, published as a shared dataset.
	cook := `c = SELECT * FROM BingClicks WHERE EventType != 'error'
	             UNION ALL
	             SELECT * FROM OfficeEvents WHERE EventType != 'error';
	         cooked = PROCESS c USING "NormalizeStrings";
	         OUTPUT cooked TO "dataset:CookedEvents";`
	res, err := sys.SubmitScript(cloudviews.Job{
		ID: "cook-day0", VC: "bing", Pipeline: "cooking", Script: cook,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cooking published CookedEvents: %d rows, %.0f container-sec\n",
		res.Output.NumRows(), res.Work)
	sys.AdvanceClock(30 * time.Minute)

	// 3. Downstream: different teams, same cooked dataset, overlapping
	// subplans nobody coordinated.
	consumers := []struct{ id, vc, script string }{
		{"bing-funnel", "bing",
			`p = SELECT * FROM CookedEvents WHERE EventType = 'click' AND Value > 20;
			 res = SELECT Region, COUNT(*) AS n FROM p GROUP BY Region;
			 OUTPUT res TO "out/bing/funnel";`},
		{"office-usage", "office",
			`p = SELECT * FROM CookedEvents WHERE EventType = 'click' AND Value > 20;
			 res = SELECT UserId, SUM(Value) AS total FROM p GROUP BY UserId;
			 OUTPUT res TO "out/office/usage";`},
		{"office-peaks", "office",
			`p = SELECT * FROM CookedEvents WHERE EventType = 'click' AND Value > 20;
			 res = SELECT Region, MAX(Value) AS peak FROM p GROUP BY Region;
			 OUTPUT res TO "out/office/peaks";`},
	}

	runAll := func(round int) {
		for _, c := range consumers {
			r, err := sys.SubmitScript(cloudviews.Job{
				ID: fmt.Sprintf("%s-r%d", c.id, round), VC: c.vc, Pipeline: c.id, Script: c.script,
			})
			if err != nil {
				log.Fatal(err)
			}
			sys.AdvanceClock(10 * time.Minute)
			note := ""
			if r.ViewsBuilt > 0 {
				note = "(materialized the shared slice)"
			}
			if r.ViewsReused > 0 {
				note = "(reused the shared slice)"
			}
			fmt.Printf("  %-14s work %8.1f cs %s\n", c.id, r.Work, note)
		}
	}

	fmt.Println("\nday 0, before analysis (every team recomputes the shared slice):")
	runAll(0)

	tags := sys.Analyze(24 * time.Hour)
	fmt.Printf("\nnightly analysis: selected views for %d template(s)\n", tags)

	fmt.Println("\nday 0, after analysis (cooking is augmented automatically):")
	runAll(1)

	fmt.Printf("\nview storage: bing=%.2f GB office=%.2f GB (charged to the dominant consumer's VC)\n",
		float64(sys.ViewStorageBytes("bing"))/1e9, float64(sys.ViewStorageBytes("office"))/1e9)
}

// syntheticTelemetry builds a small deterministic raw table.
func syntheticTelemetry(seedName string) *cloudviews.Table {
	t := &cloudviews.Table{Schema: rawSchema}
	var seed uint64
	for _, c := range []byte(seedName) {
		seed = seed*131 + uint64(c)
	}
	events := []string{"click", "view", "error", "purchase"}
	regions := []string{"us", "eu", "asia"}
	base := cloudviews.Epoch
	state := seed
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < 800; i++ {
		t.Append(cloudviews.Row{
			cloudviews.Time(base.Add(time.Duration(next(86400)) * time.Second)),
			cloudviews.Int(int64(next(5000))),
			cloudviews.String(regions[next(3)]),
			cloudviews.String(events[next(4)]),
			cloudviews.Float(float64(next(10000)) / 50),
		})
	}
	return t
}
