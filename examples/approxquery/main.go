// Approxquery: the §5.6 sampling and bit-vector-filter applications of the
// CloudViews mechanism.
//
// A shared subexpression is materialized once (the normal reuse flow). Then:
//  1. a SAMPLED view answers approximate aggregates at a fraction of the
//     read cost, with confidence intervals;
//  2. a Bloom filter built over the view's join key semi-join-reduces a
//     later query's probe side before the join runs.
//
// Run with: go run ./examples/approxquery
package main

import (
	"fmt"
	"log"
	"time"

	"cloudviews/internal/bitvector"
	"cloudviews/internal/data"
	"cloudviews/internal/exec"
	"cloudviews/internal/fixtures"
	"cloudviews/internal/plan"
	"cloudviews/internal/sampling"
	"cloudviews/internal/signature"
	"cloudviews/internal/sqlparser"
	"cloudviews/internal/storage"
)

func main() {
	cfg := fixtures.DefaultRetail()
	cfg.Sales = 20000
	cat, err := fixtures.Retail(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cat.SetScaleFactor("Sales", 50_000)

	signer := &signature.Signer{EngineVersion: "approx-demo"}
	store := storage.NewStore(func() time.Time { return fixtures.Epoch })

	// 1. Materialize the shared subexpression: Asia sales.
	bind := func(src string) plan.Node {
		q, err := sqlparser.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		b := &plan.Binder{Catalog: cat}
		n, err := b.BindQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	asia := bind(`SELECT Sales.CustomerId AS CustomerId, Price, Quantity, Discount
		FROM Sales JOIN Customer ON Sales.CustomerId = Customer.Id
		WHERE MktSegment = 'Asia'`)
	subs := signer.Subexpressions(asia)
	viewSig := subs[len(subs)-1].Strict
	spooled := &plan.Spool{Child: asia, StrictSig: string(viewSig), Path: "views/asia"}
	res, err := (&exec.Executor{Catalog: cat, Views: store}).Run(spooled)
	if err != nil {
		log.Fatal(err)
	}
	store.Seal(viewSig)
	fmt.Printf("materialized Asia view: %d physical rows (%.1f GB logical), %.0f container-sec\n",
		res.Table.NumRows(), float64(res.TotalRead)/1e9, res.TotalWork)

	// 2. Sampled view: approximate aggregates with error bars.
	samples := sampling.NewStore()
	sv, err := samples.SampleView(store, viewSig, 10)
	if err != nil {
		log.Fatal(err)
	}
	exactBig := 0
	for _, r := range res.Table.Rows {
		if r[1].F*float64(r[2].I) > 300 {
			exactBig++
		}
	}
	approx := sv.ApproxCount(func(r data.Row) bool { return r[1].F*float64(r[2].I) > 300 })
	fmt.Printf("\n10%% sampled view: %d rows\n", sv.Table.NumRows())
	fmt.Printf("big-ticket Asia sales (revenue > 300):\n")
	fmt.Printf("  exact   : %d logical rows\n", int64(float64(exactBig)*50_000))
	fmt.Printf("  approx  : %.0f ± %.0f (95%%), from a sample %.0fx cheaper to scan\n",
		approx.Value, approx.HalfWidth, float64(res.Table.NumRows())/float64(sv.Table.NumRows()))
	sum, _ := sv.ApproxSum("Discount")
	fmt.Printf("  total discount ≈ %.0f ± %.0f\n", sum.Value, sum.HalfWidth)

	// 3. Bit-vector filter: semi-join reduce a probe against Asia customers.
	blooms := bitvector.NewStore()
	bloom, err := blooms.BuildFromTable(subs[len(subs)-1].Recurring, res.Table, "CustomerId", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBloom filter over Asia CustomerIds: %d keys in %d bytes (est. FPR %.3f)\n",
		bloom.Count(), bloom.SizeBytes(), bloom.EstimatedFPR())

	// A later query probes ALL sales against the Asia side; the filter drops
	// non-Asia rows before the join.
	allSales, err := cat.Latest("Sales")
	if err != nil {
		log.Fatal(err)
	}
	key := &plan.ColRef{Index: 1, Name: "CustomerId", Typ: data.KindInt}
	reduced, pruned := bitvector.SemiJoinReduce(allSales.Table, key, bloom)
	fmt.Printf("semi-join reduction: %d of %d probe rows pruned before the join (%.1f%%)\n",
		pruned, allSales.Table.NumRows(), 100*float64(pruned)/float64(allSales.Table.NumRows()))
	fmt.Printf("surviving probe side: %d rows\n", reduced.NumRows())
}
