// Quickstart: the paper's Figure 4 scenario through the public API.
//
// Three analysts study the Asia market over shared Sales, Customer, and
// Parts datasets. Their queries look different, but their compiled plans
// share large subexpressions (Sales ⋈ Customer filtered to Asia, and its
// join with Parts). CloudViews discovers the overlap from telemetry,
// materializes the common computation the next time it appears, and rewrites
// subsequent plans to reuse it — no user action required.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cloudviews"
	"cloudviews/internal/fixtures"
)

func main() {
	sys, err := cloudviews.NewSystem(cloudviews.Config{
		ClusterName: "quickstart",
		Capacity:    200,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Build the Figure 4 datasets (Sales / Customer / Parts) and register
	// them. The fixture returns a pre-filled catalog, so here we copy its
	// tables through the public API to show the intended usage.
	cat, err := fixtures.Retail(fixtures.DefaultRetail())
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"Sales", "Customer", "Parts"} {
		ds, _ := cat.Dataset(name)
		ver, _ := cat.Latest(name)
		if err := sys.DefineDataset(name, ds.Schema); err != nil {
			log.Fatal(err)
		}
		if err := sys.PublishDataset(name, ver.Table); err != nil {
			log.Fatal(err)
		}
	}
	// Sales is the production-sized fact stream.
	sys.SetScaleFactor("Sales", 100_000)
	sys.OnboardVC("analytics")

	queries := fixtures.Figure4Queries()
	names := []string{
		"average sales per customer in Asia",
		"average discount per part brand in Asia",
		"total quantity sold per part type in Asia",
	}

	run := func(round int) {
		fmt.Printf("\n── round %d ──\n", round)
		for i, q := range queries {
			res, err := sys.SubmitScript(cloudviews.Job{
				ID:     fmt.Sprintf("r%d-analyst%d", round, i+1),
				VC:     "analytics",
				User:   fmt.Sprintf("analyst-%d", i+1),
				Script: q,
			})
			if err != nil {
				log.Fatal(err)
			}
			sys.AdvanceClock(2 * time.Minute)
			status := ""
			if res.ViewsReused > 0 {
				status = fmt.Sprintf("  ← reused %d view(s)", res.ViewsReused)
			}
			if res.ViewsBuilt > 0 {
				status += fmt.Sprintf("  ← materialized %d view(s)", res.ViewsBuilt)
			}
			fmt.Printf("%-45s work %8.1f cs, read %6.1f GB%s\n",
				names[i], res.Work, float64(res.DataRead)/1e9, status)
		}
	}

	// Round 1: cold. Nothing is known about the workload yet.
	run(1)

	// The nightly feedback loop analyzes the telemetry and selects the
	// common subexpressions worth materializing.
	tags := sys.Analyze(24 * time.Hour)
	fmt.Printf("\nworkload analysis selected views for %d job template(s)\n", tags)

	// Round 2: the first query to hit the common computation materializes it
	// (online, as part of its own execution); the rest reuse it.
	run(2)

	// Round 3: everything reuses.
	run(3)

	fmt.Printf("\nlive views: %d, view storage for 'analytics': %.1f GB\n",
		sys.ViewCount(), float64(sys.ViewStorageBytes("analytics"))/1e9)
}
