// Serveclient: the cvserve Go client against a rate-limited server.
//
// An in-process cvserve front end wraps a guard-enabled System with a
// deliberately tiny token bucket (2 submissions/sec, burst 2). Ten rapid
// submissions from one tenant overrun the bucket; the client absorbs the
// 429s, honoring each Retry-After exactly for rate sheds, and every job
// eventually lands. The admin guard plane is then used to kill and restore
// the tenant's reuse — the submissions keep working throughout, only the
// view matching is disabled.
//
// Run with: go run ./examples/serveclient
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"cloudviews"
	"cloudviews/internal/server"
)

const script = `r = SELECT Region, COUNT(*) AS n FROM Events GROUP BY Region;
OUTPUT r TO "out/r";`

func main() {
	sys, err := cloudviews.NewSystem(cloudviews.Config{
		ClusterName: "serveclient",
		Capacity:    200,
		Guard:       cloudviews.GuardConfig{Enabled: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	schema := cloudviews.Schema{
		{Name: "Id", Kind: cloudviews.KindInt},
		{Name: "Region", Kind: cloudviews.KindString},
	}
	if err := sys.DefineDataset("Events", schema); err != nil {
		log.Fatal(err)
	}
	tb := &cloudviews.Table{Schema: schema}
	for i := 0; i < 90; i++ {
		tb.Append(cloudviews.Row{
			cloudviews.Int(int64(i)),
			cloudviews.String([]string{"us", "eu", "asia"}[i%3]),
		})
	}
	if err := sys.PublishDataset("Events", tb); err != nil {
		log.Fatal(err)
	}
	sys.OnboardVC("analytics")

	srv, err := server.New(server.Config{
		System:     sys,
		Tokens:     map[string]string{"sekrit": "analytics"},
		AdminToken: "root",
		Rate:       2, // deliberately tight: the burst runs into the bucket
		Burst:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		_ = srv.Shutdown()
	}()

	c := &server.Client{
		BaseURL:     ts.URL,
		Token:       "sekrit",
		MaxAttempts: 8,
		HTTP:        ts.Client(),
	}

	fmt.Println("submitting 10 jobs through a 2/sec token bucket...")
	start := time.Now()
	for i := 0; i < 10; i++ {
		st, err := c.Submit(server.SubmitRequest{Script: script, Async: true})
		if err != nil {
			log.Fatalf("job %d: %v", i, err)
		}
		final, err := c.Wait(st.ID)
		if err != nil {
			log.Fatalf("job %d: %v", i, err)
		}
		fmt.Printf("  %s -> %s (views reused: %d)\n",
			st.ID, final.Status, final.Result.ViewsReused)
	}
	rate, queue := c.ShedCounts()
	fmt.Printf("done in %v; client absorbed %d rate sheds and %d queue sheds\n\n",
		time.Since(start).Round(time.Millisecond), rate, queue)

	// The guard admin plane: kill the VC's reuse, submit (still works,
	// without CloudViews), then restore.
	admin := &server.Client{BaseURL: ts.URL, Token: "root", HTTP: ts.Client()}
	for _, step := range []struct{ path, desc string }{
		{"/admin/guard/vcs/analytics/kill", "reuse killed"},
		{"/admin/guard/vcs/analytics/restore", "reuse restored"},
	} {
		if err := adminPost(ts.URL+step.path, "root"); err != nil {
			log.Fatal(err)
		}
		st, err := admin.Submit(server.SubmitRequest{VC: "analytics", Script: script})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after %-15s job %s: %s, views reused: %d\n",
			step.desc+",", st.ID, st.Status, st.Result.ViewsReused)
	}
}

// adminPost hits one admin guard endpoint with an empty action body.
func adminPost(url, token string) error {
	req, err := http.NewRequest("POST", url, strings.NewReader("{}"))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d", url, resp.StatusCode)
	}
	return nil
}
