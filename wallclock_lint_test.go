package cloudviews

// TestNoWallClockUnderInternal is a lint-style guard for the simulated-time
// discipline: packages under internal/ must only consume the simulated clock
// (repository windows, storage expiry, insights caches all reason about
// simulated time), so a stray time.Now()/time.Since() is a determinism bug.
// Genuinely wall-clock code must be listed in the allowlist below with a
// reason; cmd/ and the root package (which injects the wall timer into the
// repository's duration histograms) are out of scope.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wallClockAllowlist maps internal/-relative file paths to the reason they
// are allowed to read the wall clock. Currently empty: all simulated-time
// code paths are clean, and new entries need an explicit justification here.
var wallClockAllowlist = map[string]string{}

func TestNoWallClockUnderInternal(t *testing.T) {
	root := "internal"
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, _ := filepath.Rel(root, path)
		if _, ok := wallClockAllowlist[filepath.ToSlash(rel)]; ok {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "//") {
				continue
			}
			// Strip trailing line comments so a mention in a comment does
			// not trip the check.
			if idx := strings.Index(trimmed, "//"); idx >= 0 {
				trimmed = trimmed[:idx]
			}
			if strings.Contains(trimmed, "time.Now(") || strings.Contains(trimmed, "time.Since(") {
				t.Errorf("%s:%d: wall-clock call in internal/ (add to wallClockAllowlist with a reason if intentional): %s",
					path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
