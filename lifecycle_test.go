package cloudviews_test

// Black-box submission-lifecycle tests: auto-ID determinism under rejected
// traffic, and the shutdown-concurrency contracts (Drain racing Close,
// concurrent Close idempotence, mid-batch ErrClosed).

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cloudviews"
)

// TestRejectedSubmissionsDontShiftIDs: the same accepted stream yields the
// same auto-assigned job IDs whether or not rejected submissions (validation
// failures, ErrClosed after Close, failed RunDay batches) are interleaved.
// Regression: toInput used to consume a sequence number before the
// submission could be rejected, so rejected traffic shifted every later
// job-%06d ID.
func TestRejectedSubmissionsDontShiftIDs(t *testing.T) {
	run := func(withRejections bool) []string {
		sys := demoSystem(t)
		var ids []string
		reject := func(fns ...func()) {
			if withRejections {
				for _, fn := range fns {
					fn()
				}
			}
		}

		for i := 0; i < 3; i++ {
			reject(func() {
				if _, err := sys.SubmitScript(cloudviews.Job{VC: "vc1"}); err == nil {
					t.Fatal("empty script must be rejected")
				}
			}, func() {
				// A RunDay batch that fails validation mid-batch must not
				// consume sequence numbers for its earlier (valid) jobs.
				day := []cloudviews.Job{
					{VC: "vc1", Script: fmt.Sprintf(asyncScript, 1)},
					{VC: "vc1"}, // invalid
				}
				if _, err := sys.RunDay(0, day); err == nil {
					t.Fatal("invalid RunDay batch must be rejected")
				}
			})
			res, err := sys.SubmitScript(cloudviews.Job{VC: "vc1", Script: fmt.Sprintf(asyncScript, 10*i)})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, res.ID)
		}

		p, err := sys.SubmitScriptAsync(cloudviews.Job{VC: "vc1", Script: fmt.Sprintf(asyncScript, 5)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID())

		sys.Close()
		reject(func() {
			// ErrClosed rejections — the original bug burned one sequence
			// number per rejection here.
			for i := 0; i < 4; i++ {
				if _, err := sys.SubmitScriptAsync(cloudviews.Job{VC: "vc1", Script: fmt.Sprintf(asyncScript, i)}); !errors.Is(err, cloudviews.ErrClosed) {
					t.Fatalf("submission after Close: err = %v, want ErrClosed", err)
				}
			}
		})

		// Sync submission still works on a closed system; its auto ID must
		// be independent of the rejected traffic above.
		res, err := sys.SubmitScript(cloudviews.Job{VC: "vc1", Script: fmt.Sprintf(asyncScript, 20)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.ID)
		return ids
	}

	clean, noisy := run(false), run(true)
	if len(clean) != len(noisy) {
		t.Fatalf("accepted-stream lengths differ: %d vs %d", len(clean), len(noisy))
	}
	for i := range clean {
		if clean[i] != noisy[i] {
			t.Errorf("accepted job %d: ID %q with rejections, %q without", i, noisy[i], clean[i])
		}
	}
}

// TestDrainRacesClose: Drain and Close may run concurrently with submitters
// and each other; nothing deadlocks, every accepted Pending completes, and
// every rejection is ErrClosed.
func TestDrainRacesClose(t *testing.T) {
	sys := demoSystem(t)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted []*cloudviews.Pending
	)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p, err := sys.SubmitScriptAsync(cloudviews.Job{
					VC:     fmt.Sprintf("vc%d", w%3),
					Script: fmt.Sprintf(asyncScript, i%7),
				})
				if err != nil {
					if !errors.Is(err, cloudviews.ErrClosed) {
						t.Errorf("unexpected rejection: %v", err)
					}
					return
				}
				mu.Lock()
				accepted = append(accepted, p)
				mu.Unlock()
			}
		}(w)
	}
	for d := 0; d < 3; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys.Drain()
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sys.Close()
	}()
	wg.Wait()

	// Close has returned, so the flush guarantee holds: every accepted
	// Pending is already complete.
	mu.Lock()
	defer mu.Unlock()
	for i, p := range accepted {
		select {
		case <-p.Done():
		default:
			t.Fatalf("accepted pending %d incomplete after Close returned", i)
		}
		if _, err := p.Wait(); err != nil {
			t.Errorf("accepted job %d failed: %v", i, err)
		}
	}
	sys.Drain() // Drain on a closed system is a no-op, not a hang
}

// TestConcurrentCloseIdempotent: many goroutines call Close at once; all
// return, all observe the drained state, and the system stays usable for
// synchronous work.
func TestConcurrentCloseIdempotent(t *testing.T) {
	sys := demoSystem(t)
	var pendings []*cloudviews.Pending
	for i := 0; i < 12; i++ {
		p, err := sys.SubmitScriptAsync(cloudviews.Job{
			VC:     fmt.Sprintf("vc%d", i%4),
			Script: fmt.Sprintf(asyncScript, i%5),
		})
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys.Close()
			// Every Close return implies the flush guarantee, not just the
			// first caller's.
			for i, p := range pendings {
				select {
				case <-p.Done():
				default:
					t.Errorf("pending %d incomplete when a Close call returned", i)
				}
			}
		}()
	}
	wg.Wait()

	if _, err := sys.SubmitScriptAsync(cloudviews.Job{VC: "vc1", Script: fmt.Sprintf(asyncScript, 1)}); !errors.Is(err, cloudviews.ErrClosed) {
		t.Errorf("post-Close async err = %v, want ErrClosed", err)
	}
	if _, err := sys.SubmitScript(cloudviews.Job{VC: "vc1", Script: fmt.Sprintf(asyncScript, 1)}); err != nil {
		t.Errorf("post-Close sync submission failed: %v", err)
	}
}

// TestSubmitBatchMidBatchErrClosed: Close landing in the middle of a
// SubmitBatch splits it cleanly — a prefix of accepted jobs that all
// complete, then ErrClosed for the rest. Never an accepted job after a
// rejected one, never a silent drop.
func TestSubmitBatchMidBatchErrClosed(t *testing.T) {
	for round := 0; round < 5; round++ {
		sys := demoSystem(t)
		const n = 30
		jobs := make([]cloudviews.Job, n)
		for i := range jobs {
			jobs[i] = cloudviews.Job{
				ID:     fmt.Sprintf("batch-%02d", i),
				VC:     "vc1", // one VC: acceptance order is the slice order
				Script: fmt.Sprintf(asyncScript, i%7),
			}
		}

		closed := make(chan struct{})
		go func() {
			defer close(closed)
			sys.Close()
		}()
		results, err := sys.SubmitBatch(jobs)
		<-closed

		firstRejected := -1
		for i := range jobs {
			switch {
			case results[i] != nil:
				if firstRejected >= 0 {
					t.Fatalf("round %d: job %d accepted after job %d was rejected", round, i, firstRejected)
				}
				if results[i].ID != jobs[i].ID {
					t.Errorf("round %d: result %d is for %q", round, i, results[i].ID)
				}
			default:
				if firstRejected < 0 {
					firstRejected = i
				}
			}
		}
		if firstRejected >= 0 {
			if err == nil || !errors.Is(err, cloudviews.ErrClosed) {
				t.Errorf("round %d: batch error %v does not wrap ErrClosed", round, err)
			}
		} else if err != nil {
			t.Errorf("round %d: fully accepted batch returned error %v", round, err)
		}
	}
}
